//! The recording tape: eager forward evaluation plus reverse-mode backward.

use std::sync::Arc;

use fedomd_sparse::Csr;
use fedomd_tensor::activation::{relu, relu_backward, softmax_rows};
use fedomd_tensor::gemm::{matmul, matmul_nt, matmul_tn};
use fedomd_tensor::ops::{add_row_broadcast, axpy};
use fedomd_tensor::Matrix;

use crate::cmd::{cmd_grad_weighted, cmd_value_weighted, CmdTargets};

/// Handle to a node on a [`Tape`]. Cheap to copy; only meaningful for the
/// tape that produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

enum Op {
    /// Input or parameter; no backward propagation beyond gradient storage.
    Leaf,
    /// `C = A · B`.
    MatMul(usize, usize),
    /// `Y = S · X` for a constant sparse `S`.
    SpMM(Arc<Csr>, usize),
    /// `C = A + alpha · B` (same shapes).
    AddScaled(usize, usize, f32),
    /// Row-broadcast bias add: `Y = X + 1·bᵀ`, `b` is `1 × cols`.
    AddBias(usize, usize),
    /// Element-wise `max(0, x)`.
    Relu(usize),
    /// `alpha · x`.
    Scale(usize, f32),
    /// Element-wise product with a constant mask (dropout).
    MaskMul(usize, Matrix),
    /// Mean softmax cross-entropy over `mask` rows of the logits.
    SoftmaxCrossEntropy {
        logits: usize,
        probs: Matrix,
        labels: Vec<usize>,
        mask: Vec<usize>,
    },
    /// `‖WWᵀ − I‖_F` (paper Eq. 6, one layer's term).
    OrthoPenalty(usize),
    /// CMD distance of the activations against server targets (Eq. 11);
    /// `mean_scale` scales the first (mean) term (1 = the paper's Eq. 11).
    Cmd {
        z: usize,
        targets: CmdTargets,
        width: f32,
        mean_scale: f32,
    },
    /// `0.5 ‖W − T‖_F²` against a constant target (FedProx proximal term).
    SqDiff(usize, Matrix),
}

struct Node {
    value: Matrix,
    op: Op,
    requires_grad: bool,
}

/// A gradient tape. Create one per optimisation step, record the forward
/// computation through its methods, call [`Tape::backward`], then read
/// parameter gradients with [`Tape::grad`].
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Option<Matrix>>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op, requires_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            op,
            requires_grad,
        });
        self.grads.push(None);
        Var(self.nodes.len() - 1)
    }

    fn rg(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// Records a constant (no gradient tracked).
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, false)
    }

    /// Records a trainable parameter (gradient accumulated on backward).
    pub fn param(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The scalar value of a `1 × 1` node.
    ///
    /// # Panics
    /// Panics when the node is not `1 × 1`.
    pub fn scalar(&self, v: Var) -> f32 {
        let m = self.value(v);
        assert_eq!(m.shape(), (1, 1), "scalar: node is {:?}", m.shape());
        m[(0, 0)]
    }

    /// The accumulated gradient of a node, if any was propagated.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.grads[v.0].as_ref()
    }

    /// `C = A · B`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = matmul(self.value(a), self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::MatMul(a.0, b.0), rg)
    }

    /// `Y = S · X` with a constant sparse operator (graph propagation).
    pub fn spmm(&mut self, s: Arc<Csr>, x: Var) -> Var {
        let value = s.spmm(self.value(x));
        let rg = self.rg(x);
        self.push(value, Op::SpMM(s, x.0), rg)
    }

    /// `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.add_scaled(a, b, 1.0)
    }

    /// `a + alpha · b` (shapes must match). The workhorse for combining the
    /// paper's three loss terms (Eq. 12).
    pub fn add_scaled(&mut self, a: Var, b: Var, alpha: f32) -> Var {
        assert_eq!(
            self.value(a).shape(),
            self.value(b).shape(),
            "add_scaled: shape mismatch"
        );
        let mut value = self.value(a).clone();
        axpy(&mut value, alpha, self.value(b));
        let rg = self.rg(a) || self.rg(b);
        self.push(value, Op::AddScaled(a.0, b.0, alpha), rg)
    }

    /// Adds a `1 × cols` bias row to every row of `x`.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        assert_eq!(
            self.value(bias).rows(),
            1,
            "add_bias: bias must be 1 x cols"
        );
        assert_eq!(
            self.value(x).cols(),
            self.value(bias).cols(),
            "add_bias: width mismatch"
        );
        let mut value = self.value(x).clone();
        add_row_broadcast(&mut value, self.value(bias).row(0));
        let rg = self.rg(x) || self.rg(bias);
        self.push(value, Op::AddBias(x.0, bias.0), rg)
    }

    /// Element-wise ReLU.
    pub fn relu(&mut self, x: Var) -> Var {
        let value = relu(self.value(x));
        let rg = self.rg(x);
        self.push(value, Op::Relu(x.0), rg)
    }

    /// `alpha · x`.
    pub fn scale(&mut self, x: Var, alpha: f32) -> Var {
        let value = fedomd_tensor::ops::scale(self.value(x), alpha);
        let rg = self.rg(x);
        self.push(value, Op::Scale(x.0, alpha), rg)
    }

    /// Element-wise product with a fixed 0/`1/keep` mask (inverted dropout).
    /// The caller supplies the mask so that randomness stays seeded.
    pub fn mask_mul(&mut self, x: Var, mask: Matrix) -> Var {
        assert_eq!(
            self.value(x).shape(),
            mask.shape(),
            "mask_mul: shape mismatch"
        );
        let value = fedomd_tensor::ops::hadamard(self.value(x), &mask);
        let rg = self.rg(x);
        self.push(value, Op::MaskMul(x.0, mask), rg)
    }

    /// Mean softmax cross-entropy of `logits` rows listed in `mask` against
    /// integer `labels` (`labels.len() == logits.rows()`). Returns a scalar
    /// node. This is the `CE(Z^l, Y)` of the paper's Eq. 12, restricted to
    /// the training mask.
    ///
    /// # Panics
    /// Panics when `mask` is empty or an index/label is out of range.
    pub fn softmax_cross_entropy(&mut self, logits: Var, labels: &[usize], mask: &[usize]) -> Var {
        let lm = self.value(logits);
        let (n, k) = lm.shape();
        assert_eq!(
            labels.len(),
            n,
            "softmax_cross_entropy: labels length mismatch"
        );
        assert!(!mask.is_empty(), "softmax_cross_entropy: empty mask");
        let probs = softmax_rows(lm);
        let mut loss = 0.0f64;
        for &r in mask {
            assert!(r < n, "mask row {r} out of bounds");
            let y = labels[r];
            assert!(y < k, "label {y} out of bounds for {k} classes");
            loss -= (probs[(r, y)].max(1e-12) as f64).ln();
        }
        let value = Matrix::from_vec(1, 1, vec![(loss / mask.len() as f64) as f32]);
        let rg = self.rg(logits);
        self.push(
            value,
            Op::SoftmaxCrossEntropy {
                logits: logits.0,
                probs,
                labels: labels.to_vec(),
                mask: mask.to_vec(),
            },
            rg,
        )
    }

    /// Orthogonality penalty `‖WWᵀ − I‖_F` (one term of paper Eq. 6).
    pub fn ortho_penalty(&mut self, w: Var) -> Var {
        let wm = self.value(w);
        let a = residual_wwt_minus_i(wm);
        let value = Matrix::from_vec(1, 1, vec![a.frobenius_norm()]);
        let rg = self.rg(w);
        self.push(value, Op::OrthoPenalty(w.0), rg)
    }

    /// CMD distance of activations `z` to server `targets` (paper Eq. 11).
    pub fn cmd_loss(&mut self, z: Var, targets: &CmdTargets, width: f32) -> Var {
        self.cmd_loss_weighted(z, targets, width, 1.0)
    }

    /// [`Tape::cmd_loss`] with the mean-alignment term scaled by
    /// `mean_scale` (component ablation; 1.0 reproduces Eq. 11).
    pub fn cmd_loss_weighted(
        &mut self,
        z: Var,
        targets: &CmdTargets,
        width: f32,
        mean_scale: f32,
    ) -> Var {
        let value = Matrix::from_vec(
            1,
            1,
            vec![cmd_value_weighted(
                self.value(z),
                targets,
                width,
                mean_scale,
            )],
        );
        let rg = self.rg(z);
        self.push(
            value,
            Op::Cmd {
                z: z.0,
                targets: targets.clone(),
                width,
                mean_scale,
            },
            rg,
        )
    }

    /// Proximal penalty `0.5‖W − T‖_F²` against a constant target (FedProx).
    pub fn sq_diff(&mut self, w: Var, target: &Matrix) -> Var {
        assert_eq!(
            self.value(w).shape(),
            target.shape(),
            "sq_diff: shape mismatch"
        );
        let d = fedomd_tensor::ops::sq_distance(self.value(w), target);
        let value = Matrix::from_vec(1, 1, vec![0.5 * d]);
        let rg = self.rg(w);
        self.push(value, Op::SqDiff(w.0, target.clone()), rg)
    }

    /// Runs reverse-mode accumulation from the scalar node `loss`.
    ///
    /// Gradients of earlier backward calls are cleared. May be called on any
    /// `1 × 1` node.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward: loss must be a scalar node"
        );
        for g in &mut self.grads {
            *g = None;
        }
        self.grads[loss.0] = Some(Matrix::from_vec(1, 1, vec![1.0]));

        for i in (0..self.nodes.len()).rev() {
            if !self.nodes[i].requires_grad {
                continue;
            }
            let Some(g) = self.grads[i].take() else {
                continue;
            };
            self.propagate(i, &g);
            self.grads[i] = Some(g);
        }
    }

    fn accumulate(&mut self, idx: usize, delta: Matrix) {
        if !self.nodes[idx].requires_grad {
            return;
        }
        match &mut self.grads[idx] {
            Some(g) => axpy(g, 1.0, &delta),
            slot @ None => *slot = Some(delta),
        }
    }

    fn propagate(&mut self, i: usize, g: &Matrix) {
        // Taking op details by value/borrow split: compute deltas first,
        // then accumulate.
        match &self.nodes[i].op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                let (a, b) = (*a, *b);
                let da = if self.nodes[a].requires_grad {
                    Some(matmul_nt(g, &self.nodes[b].value))
                } else {
                    None
                };
                let db = if self.nodes[b].requires_grad {
                    Some(matmul_tn(&self.nodes[a].value, g))
                } else {
                    None
                };
                if let Some(d) = da {
                    self.accumulate(a, d);
                }
                if let Some(d) = db {
                    self.accumulate(b, d);
                }
            }
            Op::SpMM(s, x) => {
                let x = *x;
                if self.nodes[x].requires_grad {
                    let d = s.transpose().spmm(g);
                    self.accumulate(x, d);
                }
            }
            Op::AddScaled(a, b, alpha) => {
                let (a, b, alpha) = (*a, *b, *alpha);
                self.accumulate(a, g.clone());
                self.accumulate(b, fedomd_tensor::ops::scale(g, alpha));
            }
            Op::AddBias(x, bias) => {
                let (x, bias) = (*x, *bias);
                self.accumulate(x, g.clone());
                if self.nodes[bias].requires_grad {
                    let cols = g.cols();
                    let mut db = Matrix::zeros(1, cols);
                    for row in g.as_slice().chunks(cols) {
                        for (d, &v) in db.as_mut_slice().iter_mut().zip(row) {
                            *d += v;
                        }
                    }
                    self.accumulate(bias, db);
                }
            }
            Op::Relu(x) => {
                let x = *x;
                let d = relu_backward(&self.nodes[x].value, g);
                self.accumulate(x, d);
            }
            Op::Scale(x, alpha) => {
                let (x, alpha) = (*x, *alpha);
                self.accumulate(x, fedomd_tensor::ops::scale(g, alpha));
            }
            Op::MaskMul(x, mask) => {
                let x = *x;
                let d = fedomd_tensor::ops::hadamard(g, mask);
                self.accumulate(x, d);
            }
            Op::SoftmaxCrossEntropy {
                logits,
                probs,
                labels,
                mask,
            } => {
                let logits = *logits;
                let gout = g[(0, 0)];
                let scale = gout / mask.len() as f32;
                let mut d = Matrix::zeros(probs.rows(), probs.cols());
                for &r in mask {
                    let y = labels[r];
                    let drow = d.row_mut(r);
                    for (c, dv) in drow.iter_mut().enumerate() {
                        let p = probs[(r, c)];
                        *dv = scale * (p - if c == y { 1.0 } else { 0.0 });
                    }
                }
                self.accumulate(logits, d);
            }
            Op::OrthoPenalty(w) => {
                let w = *w;
                let gout = g[(0, 0)];
                let wm = &self.nodes[w].value;
                let a = residual_wwt_minus_i(wm);
                let norm = a.frobenius_norm();
                if norm > 1e-12 {
                    // d‖A‖_F/dW = 2 A W / ‖A‖_F with A = WWᵀ − I (symmetric).
                    let mut d = matmul(&a, wm);
                    d.map_inplace(|v| v * 2.0 * gout / norm);
                    self.accumulate(w, d);
                }
            }
            Op::Cmd {
                z,
                targets,
                width,
                mean_scale,
            } => {
                let z = *z;
                let gout = g[(0, 0)];
                let d = cmd_grad_weighted(&self.nodes[z].value, targets, *width, gout, *mean_scale);
                self.accumulate(z, d);
            }
            Op::SqDiff(w, target) => {
                let w = *w;
                let gout = g[(0, 0)];
                let mut d = fedomd_tensor::ops::sub(&self.nodes[w].value, target);
                d.map_inplace(|v| v * gout);
                self.accumulate(w, d);
            }
        }
    }
}

/// `A = WWᵀ − I` for the orthogonality penalty.
fn residual_wwt_minus_i(w: &Matrix) -> Matrix {
    let mut a = matmul_nt(w, w);
    let n = a.rows();
    for i in 0..n {
        a[(i, i)] -= 1.0;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::finite_diff_check;
    use crate::cmd::{cmd_grad, cmd_value};
    use fedomd_tensor::rng::seeded;

    fn randm(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        fedomd_tensor::init::standard_normal(rows, cols, &mut rng).map(|v| v * 0.4)
    }

    /// Builds a scalar loss as sum of all elements via matmul with ones.
    fn sum_to_scalar(t: &mut Tape, v: Var) -> Var {
        let (r, c) = t.value(v).shape();
        let left = t.constant(Matrix::full(1, r, 1.0));
        let right = t.constant(Matrix::full(c, 1, 1.0));
        let tmp = t.matmul(left, v);
        t.matmul(tmp, right)
    }

    #[test]
    fn matmul_gradients_match_fd() {
        let a0 = randm(4, 3, 1);
        let b0 = randm(3, 5, 2);
        let mut t = Tape::new();
        let a = t.param(a0.clone());
        let b = t.param(b0.clone());
        let c = t.matmul(a, b);
        let loss = sum_to_scalar(&mut t, c);
        t.backward(loss);
        let ga = t.grad(a).unwrap().clone();
        let gb = t.grad(b).unwrap().clone();

        finite_diff_check(
            |m| {
                let mut t = Tape::new();
                let a = t.param(m.clone());
                let b = t.constant(b0.clone());
                let c = t.matmul(a, b);
                let l = sum_to_scalar(&mut t, c);
                t.scalar(l)
            },
            &a0,
            &ga,
            1e-3,
            1e-2,
        );
        finite_diff_check(
            |m| {
                let mut t = Tape::new();
                let a = t.constant(a0.clone());
                let b = t.param(m.clone());
                let c = t.matmul(a, b);
                let l = sum_to_scalar(&mut t, c);
                t.scalar(l)
            },
            &b0,
            &gb,
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn relu_and_bias_gradients_match_fd() {
        let x0 = randm(5, 4, 3);
        let b0 = randm(1, 4, 4);
        let run = |xm: &Matrix, bm: &Matrix, grads: bool| -> (f32, Option<(Matrix, Matrix)>) {
            let mut t = Tape::new();
            let x = t.param(xm.clone());
            let b = t.param(bm.clone());
            let h = t.add_bias(x, b);
            let h = t.relu(h);
            let l = sum_to_scalar(&mut t, h);
            if grads {
                t.backward(l);
                let gx = t.grad(x).unwrap().clone();
                let gb = t.grad(b).unwrap().clone();
                (t.scalar(l), Some((gx, gb)))
            } else {
                (t.scalar(l), None)
            }
        };
        let (_, g) = run(&x0, &b0, true);
        let (gx, gb) = g.unwrap();
        finite_diff_check(|m| run(m, &b0, false).0, &x0, &gx, 1e-3, 2e-2);
        finite_diff_check(|m| run(&x0, m, false).0, &b0, &gb, 1e-3, 2e-2);
    }

    #[test]
    fn spmm_gradient_matches_fd() {
        let s = Arc::new(fedomd_sparse::normalized_adjacency(
            5,
            &[(0, 1), (1, 2), (2, 3), (3, 4)],
        ));
        let x0 = randm(5, 3, 5);
        let run = |xm: &Matrix| {
            let mut t = Tape::new();
            let x = t.param(xm.clone());
            let y = t.spmm(s.clone(), x);
            let l = sum_to_scalar(&mut t, y);
            (t, x, l)
        };
        let (mut t, x, l) = run(&x0);
        t.backward(l);
        let gx = t.grad(x).unwrap().clone();
        finite_diff_check(
            |m| {
                let (t, _, l) = run(m);
                t.scalar(l)
            },
            &x0,
            &gx,
            1e-3,
            1e-2,
        );
    }

    #[test]
    fn cross_entropy_gradient_matches_fd() {
        let logits0 = randm(6, 3, 7);
        let labels = vec![0, 1, 2, 0, 1, 2];
        let mask = vec![0, 2, 4, 5];
        let run = |m: &Matrix| {
            let mut t = Tape::new();
            let lg = t.param(m.clone());
            let l = t.softmax_cross_entropy(lg, &labels, &mask);
            (t, lg, l)
        };
        let (mut t, lg, l) = run(&logits0);
        t.backward(l);
        let g = t.grad(lg).unwrap().clone();
        finite_diff_check(
            |m| {
                let (t, _, l) = run(m);
                t.scalar(l)
            },
            &logits0,
            &g,
            1e-3,
            2e-2,
        );
    }

    #[test]
    fn cross_entropy_value_is_log_k_at_uniform_logits() {
        let mut t = Tape::new();
        let lg = t.param(Matrix::zeros(4, 5));
        let labels = vec![0, 1, 2, 3];
        let l = t.softmax_cross_entropy(lg, &labels, &[0, 1, 2, 3]);
        assert!((t.scalar(l) - (5.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn ortho_penalty_gradient_matches_fd() {
        let w0 = randm(4, 6, 8);
        let run = |m: &Matrix| {
            let mut t = Tape::new();
            let w = t.param(m.clone());
            let l = t.ortho_penalty(w);
            (t, w, l)
        };
        let (mut t, w, l) = run(&w0);
        t.backward(l);
        let g = t.grad(w).unwrap().clone();
        finite_diff_check(
            |m| {
                let (t, _, l) = run(m);
                t.scalar(l)
            },
            &w0,
            &g,
            1e-3,
            2e-2,
        );
    }

    #[test]
    fn ortho_penalty_is_zero_for_orthonormal_rows() {
        // Rows of the identity are orthonormal: WWᵀ = I.
        let mut t = Tape::new();
        let w = t.param(Matrix::identity(3));
        let l = t.ortho_penalty(w);
        assert!(t.scalar(l) < 1e-6);
        t.backward(l);
        // Zero-norm residual: subgradient is zero (no grad accumulated or zero).
        if let Some(g) = t.grad(w) {
            assert!(g.max_abs() < 1e-6);
        }
    }

    #[test]
    fn sq_diff_gradient_is_w_minus_target() {
        let w0 = randm(3, 3, 9);
        let target = randm(3, 3, 10);
        let mut t = Tape::new();
        let w = t.param(w0.clone());
        let l = t.sq_diff(w, &target);
        t.backward(l);
        let g = t.grad(w).unwrap();
        g.assert_close(&fedomd_tensor::ops::sub(&w0, &target), 1e-5);
    }

    #[test]
    fn cmd_loss_through_tape_matches_direct() {
        let z0 = randm(8, 4, 11);
        let targets = CmdTargets::from_matrix(&randm(10, 4, 12), 5);
        let mut t = Tape::new();
        let z = t.param(z0.clone());
        let l = t.cmd_loss(z, &targets, 1.0);
        assert!((t.scalar(l) - cmd_value(&z0, &targets, 1.0)).abs() < 1e-6);
        t.backward(l);
        t.grad(z)
            .unwrap()
            .assert_close(&cmd_grad(&z0, &targets, 1.0, 1.0), 1e-5);
    }

    #[test]
    fn fan_out_accumulates_gradients() {
        // y = x + x  =>  dy/dx = 2.
        let mut t = Tape::new();
        let x = t.param(Matrix::from_vec(1, 1, vec![3.0]));
        let y = t.add(x, x);
        t.backward(y);
        assert_eq!(t.grad(x).unwrap()[(0, 0)], 2.0);
    }

    #[test]
    fn constants_get_no_gradient() {
        let mut t = Tape::new();
        let x = t.constant(Matrix::from_vec(1, 1, vec![2.0]));
        let w = t.param(Matrix::from_vec(1, 1, vec![4.0]));
        let y = t.matmul(x, w);
        t.backward(y);
        assert!(t.grad(x).is_none());
        assert!(t.grad(w).is_some());
    }

    #[test]
    fn mask_mul_routes_gradient_through_mask() {
        let mut t = Tape::new();
        let x = t.param(Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let mask = Matrix::from_vec(1, 3, vec![2.0, 0.0, 2.0]);
        let y = t.mask_mul(x, mask);
        let l = sum_to_scalar(&mut t, y);
        t.backward(l);
        assert_eq!(t.grad(x).unwrap().as_slice(), &[2.0, 0.0, 2.0]);
    }

    #[test]
    fn scale_chain_rule() {
        let mut t = Tape::new();
        let x = t.param(Matrix::from_vec(1, 1, vec![5.0]));
        let y = t.scale(x, -3.0);
        t.backward(y);
        assert_eq!(t.grad(x).unwrap()[(0, 0)], -3.0);
    }

    #[test]
    fn two_layer_gcn_like_graph_end_to_end_fd() {
        // ReLU(Ŝ X W0) W1 -> CE: the exact shape of the paper's local model.
        let s = Arc::new(fedomd_sparse::normalized_adjacency(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        ));
        let x0 = randm(6, 4, 20);
        let w0 = randm(4, 5, 21);
        let w1 = randm(5, 3, 22);
        let labels = vec![0, 1, 2, 0, 1, 2];
        let mask = vec![0, 1, 3, 5];

        let run = |w0m: &Matrix, w1m: &Matrix| {
            let mut t = Tape::new();
            let x = t.constant(x0.clone());
            let w0v = t.param(w0m.clone());
            let w1v = t.param(w1m.clone());
            let h = t.spmm(s.clone(), x);
            let h = t.matmul(h, w0v);
            let h = t.relu(h);
            let h = t.spmm(s.clone(), h);
            let logits = t.matmul(h, w1v);
            let l = t.softmax_cross_entropy(logits, &labels, &mask);
            (t, w0v, w1v, l)
        };
        let (mut t, w0v, w1v, l) = run(&w0, &w1);
        t.backward(l);
        let g0 = t.grad(w0v).unwrap().clone();
        let g1 = t.grad(w1v).unwrap().clone();
        finite_diff_check(
            |m| {
                let (t, _, _, l) = run(m, &w1);
                t.scalar(l)
            },
            &w0,
            &g0,
            1e-3,
            3e-2,
        );
        finite_diff_check(
            |m| {
                let (t, _, _, l) = run(&w0, m);
                t.scalar(l)
            },
            &w1,
            &g1,
            1e-3,
            3e-2,
        );
    }

    #[test]
    #[should_panic(expected = "loss must be a scalar")]
    fn backward_rejects_non_scalar() {
        let mut t = Tape::new();
        let x = t.param(Matrix::zeros(2, 2));
        t.backward(x);
    }
}
