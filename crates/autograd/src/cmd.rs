//! The Central Moment Discrepancy distance (paper Eq. 11) and its analytic
//! gradient with respect to the client's hidden representation.
//!
//! For a client activation matrix `Z` (`n × d`) with column means
//! `m = E(Z)` and central moments `C_j = E[(Z − m)^j]`, and server targets
//! `(M, S_2..S_J)` obtained from the two-round protocol, the distance is
//!
//! ```text
//! d_CMD = (1/w)‖m − M‖₂ + Σ_{j=2}^{J} (1/w^j) ‖C_j − S_j‖₂
//! ```
//!
//! with `w = b − a` the assumed activation range. The gradient through both
//! the mean and each central moment is analytic:
//!
//! ```text
//! ∂d/∂Z[r,c] = (1/w)·u_c/n
//!            + Σ_j (1/w^j)·v_{j,c}·(j/n)·((Z[r,c] − m_c)^{j−1} − C_{j−1,c})
//! ```
//!
//! where `u = (m − M)/‖m − M‖`, `v_j = (C_j − S_j)/‖C_j − S_j‖` (taken as 0
//! at the non-differentiable origin), and `C_1 = 0` by definition.

use fedomd_tensor::stats::{central_moments, column_means, l2_distance};
use fedomd_tensor::Matrix;
use rayon::prelude::*;

/// Server-side CMD targets for one hidden layer: the global mean `M` and
/// the global central moments `S_j` for `j = 2..=max_order`.
#[derive(Clone, Debug, PartialEq)]
pub struct CmdTargets {
    /// Global column mean `M` (length `d`).
    pub mean: Vec<f32>,
    /// `moments[j - 2]` is the order-`j` global central moment (length `d`).
    pub moments: Vec<Vec<f32>>,
}

impl CmdTargets {
    /// Highest moment order carried (the paper uses 5).
    pub fn max_order(&self) -> u32 {
        self.moments.len() as u32 + 1
    }

    /// Targets computed from a single matrix (used by tests: the CMD of `Z`
    /// against its own targets must be zero).
    pub fn from_matrix(z: &Matrix, max_order: u32) -> Self {
        assert!(max_order >= 2);
        let mean = column_means(z);
        let moments = (2..=max_order)
            .map(|j| central_moments(z, &mean, j))
            .collect();
        Self { mean, moments }
    }
}

/// Forward value of the CMD distance for one layer.
///
/// # Panics
/// Panics when dimensions disagree or `width <= 0`.
pub fn cmd_value(z: &Matrix, targets: &CmdTargets, width: f32) -> f32 {
    cmd_value_weighted(z, targets, width, 1.0)
}

/// [`cmd_value`] with the first (mean-alignment) term of Eq. 11 scaled by
/// `mean_scale`. `mean_scale = 1` is the paper's distance; `0` keeps only
/// the order-≥2 shape terms — an ablation of which Eq. 11 component the
/// constraint's effect comes from.
pub fn cmd_value_weighted(z: &Matrix, targets: &CmdTargets, width: f32, mean_scale: f32) -> f32 {
    assert!(width > 0.0, "cmd_value: width must be positive");
    assert_eq!(
        targets.mean.len(),
        z.cols(),
        "cmd_value: dimension mismatch"
    );
    let m = column_means(z);
    let mut total = mean_scale * l2_distance(&m, &targets.mean) / width;
    let mut wj = width;
    for (idx, s_j) in targets.moments.iter().enumerate() {
        let j = idx as u32 + 2;
        wj *= width;
        let c_j = central_moments(z, &m, j);
        total += l2_distance(&c_j, s_j) / wj;
    }
    total
}

/// Gradient of `gout * cmd_value(z, targets, width)` with respect to `z`.
pub fn cmd_grad(z: &Matrix, targets: &CmdTargets, width: f32, gout: f32) -> Matrix {
    cmd_grad_weighted(z, targets, width, gout, 1.0)
}

/// Gradient counterpart of [`cmd_value_weighted`].
pub fn cmd_grad_weighted(
    z: &Matrix,
    targets: &CmdTargets,
    width: f32,
    gout: f32,
    mean_scale: f32,
) -> Matrix {
    assert!(width > 0.0, "cmd_grad: width must be positive");
    let (n, d) = z.shape();
    let mut grad = Matrix::zeros(n, d);
    if n == 0 {
        return grad;
    }
    let max_order = targets.max_order();
    let m = column_means(z);

    // Central moments C_1..C_J about the local mean. C_1 is identically 0
    // but participates in the j = 2 gradient term, so keep the slot.
    let mut c: Vec<Vec<f32>> = Vec::with_capacity(max_order as usize);
    c.push(vec![0.0; d]);
    for j in 2..=max_order {
        c.push(central_moments(z, &m, j));
    }

    // Unit direction for the mean term.
    let mean_norm = l2_distance(&m, &targets.mean);
    let u: Vec<f32> = if mean_norm > 0.0 {
        m.iter()
            .zip(&targets.mean)
            .map(|(a, b)| (a - b) / mean_norm)
            .collect()
    } else {
        vec![0.0; d]
    };

    // Unit directions and weights for each moment term.
    let mut v: Vec<Vec<f32>> = Vec::with_capacity(max_order as usize - 1);
    let mut coef: Vec<f32> = Vec::with_capacity(max_order as usize - 1);
    let mut wj = width;
    for (idx, s_j) in targets.moments.iter().enumerate() {
        let c_j = &c[idx + 1]; // order j = idx + 2, slot j - 1 = idx + 1
        wj *= width;
        let norm = l2_distance(c_j, s_j);
        if norm > 0.0 {
            v.push(c_j.iter().zip(s_j).map(|(a, b)| (a - b) / norm).collect());
        } else {
            v.push(vec![0.0; d]);
        }
        coef.push(1.0 / wj);
    }

    let inv_n = 1.0 / n as f32;
    let z_data = z.as_slice();
    let mean_coef = mean_scale * gout / width;
    grad.as_mut_slice()
        .par_chunks_mut(d)
        .enumerate()
        .for_each(|(r, grow)| {
            let zrow = &z_data[r * d..(r + 1) * d];
            for col in 0..d {
                let diff = zrow[col] - m[col];
                let mut g = mean_coef * u[col] * inv_n;
                // powers (Z - m)^{j-1}: start at j = 2 -> power 1.
                let mut p = diff;
                for (idx, vj) in v.iter().enumerate() {
                    let j = (idx + 2) as f32;
                    let c_prev = c[idx][col]; // C_{j-1}
                    g += gout * coef[idx] * vj[col] * j * inv_n * (p - c_prev);
                    p *= diff;
                }
                grow[col] += g;
            }
        });
    grad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::finite_diff_check;
    use fedomd_tensor::rng::seeded;

    fn z(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        fedomd_tensor::init::standard_normal(rows, cols, &mut rng).map(|v| v * 0.5)
    }

    fn targets(seed: u64, cols: usize) -> CmdTargets {
        CmdTargets::from_matrix(&z(23, cols, seed), 5)
    }

    #[test]
    fn distance_to_own_targets_is_zero() {
        let a = z(17, 6, 1);
        let t = CmdTargets::from_matrix(&a, 5);
        assert!(cmd_value(&a, &t, 1.0) < 1e-5);
    }

    #[test]
    fn distance_is_nonnegative_and_detects_shift() {
        let a = z(17, 6, 2);
        let shifted = a.map(|v| v + 1.0);
        let t = CmdTargets::from_matrix(&a, 5);
        assert!(cmd_value(&shifted, &t, 1.0) > 0.5);
    }

    #[test]
    fn width_downweights_higher_moments() {
        // With a larger width the same discrepancy costs less.
        let a = z(20, 4, 3);
        let t = targets(4, 4);
        let d1 = cmd_value(&a, &t, 1.0);
        let d5 = cmd_value(&a, &t, 5.0);
        assert!(d5 < d1);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let a = z(9, 4, 5);
        let t = targets(6, 4);
        let analytic = cmd_grad(&a, &t, 1.0, 1.0);
        finite_diff_check(|m| cmd_value(m, &t, 1.0), &a, &analytic, 1e-3, 2e-2);
    }

    #[test]
    fn gradient_with_nonunit_width_and_gout() {
        let a = z(7, 3, 8);
        let t = targets(9, 3);
        let gout = 2.5;
        let width = 2.0;
        let analytic = cmd_grad(&a, &t, width, gout);
        finite_diff_check(
            |m| gout * cmd_value(m, &t, width),
            &a,
            &analytic,
            1e-3,
            2e-2,
        );
    }

    #[test]
    fn gradient_at_own_targets_is_finite() {
        // At the minimum all norms are ~0; the subgradient must be 0/finite,
        // not NaN.
        let a = z(11, 4, 10);
        let t = CmdTargets::from_matrix(&a, 5);
        let g = cmd_grad(&a, &t, 1.0, 1.0);
        assert!(g.all_finite());
        assert!(g.max_abs() < 1e-3);
    }

    #[test]
    fn gradient_descends_the_distance() {
        let mut a = z(15, 5, 11);
        let t = targets(12, 5);
        let before = cmd_value(&a, &t, 1.0);
        for _ in 0..200 {
            let g = cmd_grad(&a, &t, 1.0, 1.0);
            fedomd_tensor::ops::axpy(&mut a, -0.05, &g);
        }
        let after = cmd_value(&a, &t, 1.0);
        assert!(
            after.is_finite() && after < before * 0.8,
            "descent failed: {before} -> {after}"
        );
    }

    #[test]
    fn max_order_respected() {
        let t = CmdTargets::from_matrix(&z(9, 3, 13), 3);
        assert_eq!(t.max_order(), 3);
        assert_eq!(t.moments.len(), 2);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let a = z(4, 2, 14);
        let t = targets(15, 2);
        let _ = cmd_value(&a, &t, 0.0);
    }
}

#[cfg(test)]
mod weighted_tests {
    use super::*;
    use crate::check::finite_diff_check;
    use fedomd_tensor::rng::seeded;

    #[test]
    fn weighted_gradient_matches_finite_differences() {
        let mut rng = seeded(31);
        let z = fedomd_tensor::init::standard_normal(9, 4, &mut rng).map(|v| v * 0.5);
        let t = CmdTargets::from_matrix(
            &fedomd_tensor::init::standard_normal(11, 4, &mut seeded(32)).map(|v| v * 0.5),
            5,
        );
        for ms in [0.0f32, 0.1, 0.7] {
            let g = cmd_grad_weighted(&z, &t, 1.0, 1.0, ms);
            finite_diff_check(|m| cmd_value_weighted(m, &t, 1.0, ms), &z, &g, 1e-3, 2e-2);
        }
    }

    #[test]
    fn zero_mean_scale_ignores_mean_shift() {
        let mut rng = seeded(33);
        let z = fedomd_tensor::init::standard_normal(20, 3, &mut rng);
        let t = CmdTargets::from_matrix(&z, 5);
        // Shifting z changes the mean but not the central moments, so with
        // mean_scale = 0 the distance stays ~0.
        let shifted = z.map(|v| v + 3.0);
        assert!(cmd_value_weighted(&shifted, &t, 1.0, 0.0) < 1e-4);
        assert!(cmd_value_weighted(&shifted, &t, 1.0, 1.0) > 1.0);
    }
}
