//! The Central Moment Discrepancy distance (paper Eq. 11) and its analytic
//! gradient with respect to the client's hidden representation.
//!
//! For a client activation matrix `Z` (`n × d`) with column means
//! `m = E(Z)` and central moments `C_j = E[(Z − m)^j]`, and server targets
//! `(M, S_2..S_J)` obtained from the two-round protocol, the distance is
//!
//! ```text
//! d_CMD = (1/w)‖m − M‖₂ + Σ_{j=2}^{J} (1/w^j) ‖C_j − S_j‖₂
//! ```
//!
//! with `w = b − a` the assumed activation range. The gradient through both
//! the mean and each central moment is analytic:
//!
//! ```text
//! ∂d/∂Z[r,c] = (1/w)·u_c/n
//!            + Σ_j (1/w^j)·v_{j,c}·(j/n)·((Z[r,c] − m_c)^{j−1} − C_{j−1,c})
//! ```
//!
//! where `u = (m − M)/‖m − M‖`, `v_j = (C_j − S_j)/‖C_j − S_j‖` (taken as 0
//! at the non-differentiable origin), and `C_1 = 0` by definition.

use fedomd_tensor::stats::{central_moments, central_moments_upto, column_means, l2_distance};
use fedomd_tensor::Matrix;
use rayon::prelude::*;

/// Server-side CMD targets for one hidden layer: the global mean `M` and
/// the global central moments `S_j` for `j = 2..=max_order`.
#[derive(Clone, Debug, PartialEq)]
pub struct CmdTargets {
    /// Global column mean `M` (length `d`).
    pub mean: Vec<f32>,
    /// `moments[j - 2]` is the order-`j` global central moment (length `d`).
    pub moments: Vec<Vec<f32>>,
}

impl CmdTargets {
    /// Highest moment order carried (the paper uses 5).
    pub fn max_order(&self) -> u32 {
        self.moments.len() as u32 + 1
    }

    /// Targets computed from a single matrix (used by tests: the CMD of `Z`
    /// against its own targets must be zero). `max_order == 1` yields a
    /// mean-only target with no moment constraints.
    pub fn from_matrix(z: &Matrix, max_order: u32) -> Self {
        assert!(max_order >= 1);
        let mean = column_means(z);
        let moments = central_moments_upto(z, &mean, max_order);
        Self { mean, moments }
    }
}

/// Forward value of the CMD distance for one layer.
///
/// # Panics
/// Panics when dimensions disagree or `width <= 0`.
pub fn cmd_value(z: &Matrix, targets: &CmdTargets, width: f32) -> f32 {
    cmd_value_weighted(z, targets, width, 1.0)
}

/// [`cmd_value`] with the first (mean-alignment) term of Eq. 11 scaled by
/// `mean_scale`. `mean_scale = 1` is the paper's distance; `0` keeps only
/// the order-≥2 shape terms — an ablation of which Eq. 11 component the
/// constraint's effect comes from.
pub fn cmd_value_weighted(z: &Matrix, targets: &CmdTargets, width: f32, mean_scale: f32) -> f32 {
    assert!(width > 0.0, "cmd_value: width must be positive");
    assert_eq!(
        targets.mean.len(),
        z.cols(),
        "cmd_value: dimension mismatch"
    );
    let m = column_means(z);
    let mut total = mean_scale * l2_distance(&m, &targets.mean) / width;
    // One fused sweep over Z yields every order at once (bit-identical to
    // the per-order reference — see `cmd_value_ref` and the proptests).
    let all = central_moments_upto(z, &m, targets.max_order());
    let mut wj = width;
    for (c_j, s_j) in all.iter().zip(&targets.moments) {
        wj *= width;
        total += l2_distance(c_j, s_j) / wj;
    }
    total
}

/// Per-order reference implementation of [`cmd_value_weighted`]: one
/// `central_moments` sweep per order, exactly the pre-fusion kernel. Kept
/// as the bit-identity oracle for the fused path.
pub fn cmd_value_ref(z: &Matrix, targets: &CmdTargets, width: f32, mean_scale: f32) -> f32 {
    assert!(width > 0.0, "cmd_value: width must be positive");
    assert_eq!(
        targets.mean.len(),
        z.cols(),
        "cmd_value: dimension mismatch"
    );
    let m = column_means(z);
    let mut total = mean_scale * l2_distance(&m, &targets.mean) / width;
    let mut wj = width;
    for (idx, s_j) in targets.moments.iter().enumerate() {
        let j = idx as u32 + 2;
        wj *= width;
        let c_j = central_moments(z, &m, j);
        total += l2_distance(&c_j, s_j) / wj;
    }
    total
}

/// Gradient of `gout * cmd_value(z, targets, width)` with respect to `z`.
pub fn cmd_grad(z: &Matrix, targets: &CmdTargets, width: f32, gout: f32) -> Matrix {
    cmd_grad_weighted(z, targets, width, gout, 1.0)
}

/// Rows per parallel task of the gradient sweep; also amortises the
/// per-call SIMD dispatch over a block of rows.
const GRAD_ROW_BLOCK: usize = 64;

/// The per-row gradient kernel over a block of rows, monomorphised on the
/// moment-term count. Per element it evaluates
/// `g0[col] + Σ_ord w[ord·d+col]·(p − cprev[ord·d+col])` with `p` the
/// left-associated power chain `diff, diff², …` — exactly the reference
/// expression in [`cmd_grad_ref`] with its per-column constant prefix
/// hoisted (the hoisted products are left-associated in the same order,
/// so every partial product is bitwise the same). `r0` is the absolute
/// row index of `grad`'s first row.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn cmd_grad_rows_body<const ORDERS: usize>(
    z_data: &[f32],
    m: &[f32],
    g0: &[f32],
    w: &[f32],
    cprev: &[f32],
    d: usize,
    r0: usize,
    grad: &mut [f32],
) {
    for (rr, grow) in grad.chunks_mut(d).enumerate() {
        let zrow = &z_data[(r0 + rr) * d..(r0 + rr + 1) * d];
        for col in 0..d {
            let diff = zrow[col] - m[col];
            let mut g = g0[col];
            // powers (Z - m)^{j-1}: start at j = 2 -> power 1.
            let mut p = diff;
            for ord in 0..ORDERS {
                g += w[ord * d + col] * (p - cprev[ord * d + col]);
                p *= diff;
            }
            grow[col] += g;
        }
    }
}

/// Baseline-ISA instantiation of the gradient row kernel.
#[allow(clippy::too_many_arguments)]
fn cmd_grad_rows_generic<const ORDERS: usize>(
    z_data: &[f32],
    m: &[f32],
    g0: &[f32],
    w: &[f32],
    cprev: &[f32],
    d: usize,
    r0: usize,
    grad: &mut [f32],
) {
    cmd_grad_rows_body::<ORDERS>(z_data, m, g0, w, cprev, d, r0, grad);
}

/// AVX2 instantiation: identical Rust code, wider auto-vectorisation.
/// Plain lane-wise IEEE mul/add/sub without contraction keeps it
/// bit-identical to [`cmd_grad_rows_generic`].
///
/// # Safety
/// Callers must have verified AVX2 support at runtime.
// SAFETY: `unsafe` solely because of `#[target_feature(enable = "avx2")]`
// — executing AVX2 instructions on a CPU without them is UB. The only
// call site (`run_cmd_grad_rows`) is gated on `is_x86_feature_detected!`
// evaluated once in `cmd_grad_weighted`. All memory access goes through
// the shared safe `cmd_grad_rows_body`: plain slices, every index
// bounds-checked — no raw pointers, no alignment assumptions.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn cmd_grad_rows_avx2<const ORDERS: usize>(
    z_data: &[f32],
    m: &[f32],
    g0: &[f32],
    w: &[f32],
    cprev: &[f32],
    d: usize,
    r0: usize,
    grad: &mut [f32],
) {
    cmd_grad_rows_body::<ORDERS>(z_data, m, g0, w, cprev, d, r0, grad);
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn run_cmd_grad_rows<const ORDERS: usize>(
    avx2: bool,
    z_data: &[f32],
    m: &[f32],
    g0: &[f32],
    w: &[f32],
    cprev: &[f32],
    d: usize,
    r0: usize,
    grad: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if avx2 {
        // SAFETY: `avx2` is only true when `is_x86_feature_detected!`
        // confirmed support in `cmd_grad_weighted`.
        unsafe { cmd_grad_rows_avx2::<ORDERS>(z_data, m, g0, w, cprev, d, r0, grad) };
        return;
    }
    let _ = avx2;
    cmd_grad_rows_generic::<ORDERS>(z_data, m, g0, w, cprev, d, r0, grad);
}

/// Dispatches the runtime moment-term count to a monomorphised kernel
/// (0..=5 covers targets of `max_order ∈ 1..=6`); higher counts take a
/// dynamically-bounded loop with the identical per-element chain.
#[allow(clippy::too_many_arguments)]
fn cmd_grad_rows_dyn(
    avx2: bool,
    orders: usize,
    z_data: &[f32],
    m: &[f32],
    g0: &[f32],
    w: &[f32],
    cprev: &[f32],
    d: usize,
    r0: usize,
    grad: &mut [f32],
) {
    match orders {
        0 => run_cmd_grad_rows::<0>(avx2, z_data, m, g0, w, cprev, d, r0, grad),
        1 => run_cmd_grad_rows::<1>(avx2, z_data, m, g0, w, cprev, d, r0, grad),
        2 => run_cmd_grad_rows::<2>(avx2, z_data, m, g0, w, cprev, d, r0, grad),
        3 => run_cmd_grad_rows::<3>(avx2, z_data, m, g0, w, cprev, d, r0, grad),
        4 => run_cmd_grad_rows::<4>(avx2, z_data, m, g0, w, cprev, d, r0, grad),
        5 => run_cmd_grad_rows::<5>(avx2, z_data, m, g0, w, cprev, d, r0, grad),
        _ => {
            for (rr, grow) in grad.chunks_mut(d).enumerate() {
                let zrow = &z_data[(r0 + rr) * d..(r0 + rr + 1) * d];
                for col in 0..d {
                    let diff = zrow[col] - m[col];
                    let mut g = g0[col];
                    let mut p = diff;
                    for ord in 0..orders {
                        g += w[ord * d + col] * (p - cprev[ord * d + col]);
                        p *= diff;
                    }
                    grow[col] += g;
                }
            }
        }
    }
}

/// Gradient counterpart of [`cmd_value_weighted`].
pub fn cmd_grad_weighted(
    z: &Matrix,
    targets: &CmdTargets,
    width: f32,
    gout: f32,
    mean_scale: f32,
) -> Matrix {
    assert!(width > 0.0, "cmd_grad: width must be positive");
    let (n, d) = z.shape();
    let mut grad = Matrix::zeros(n, d);
    if n == 0 || d == 0 {
        return grad;
    }
    let max_order = targets.max_order();
    let m = column_means(z);

    // Central moments C_1..C_J about the local mean, all orders from one
    // fused sweep. C_1 is identically 0 but participates in the j = 2
    // gradient term, so keep the slot.
    let mut c: Vec<Vec<f32>> = Vec::with_capacity(max_order as usize);
    c.push(vec![0.0; d]);
    c.extend(central_moments_upto(z, &m, max_order));

    // Unit direction for the mean term.
    let mean_norm = l2_distance(&m, &targets.mean);
    let u: Vec<f32> = if mean_norm > 0.0 {
        m.iter()
            .zip(&targets.mean)
            .map(|(a, b)| (a - b) / mean_norm)
            .collect()
    } else {
        vec![0.0; d]
    };

    // Unit directions and weights for each moment term.
    let mut v: Vec<Vec<f32>> = Vec::with_capacity(max_order as usize - 1);
    let mut coef: Vec<f32> = Vec::with_capacity(max_order as usize - 1);
    let mut wj = width;
    for (idx, s_j) in targets.moments.iter().enumerate() {
        let c_j = &c[idx + 1]; // order j = idx + 2, slot j - 1 = idx + 1
        wj *= width;
        let norm = l2_distance(c_j, s_j);
        if norm > 0.0 {
            v.push(c_j.iter().zip(s_j).map(|(a, b)| (a - b) / norm).collect());
        } else {
            v.push(vec![0.0; d]);
        }
        coef.push(1.0 / wj);
    }

    let inv_n = 1.0 / n as f32;
    let mean_coef = mean_scale * gout / width;
    // Hoist the per-column constants of the reference expression
    // (`mean_coef·u[col]·inv_n` and `gout·coef·v_j[col]·j·inv_n`) out of
    // the row loop; the products stay left-associated in the reference
    // order so the hoisted values are bitwise the ones the reference
    // computes per row.
    let g0: Vec<f32> = u.iter().map(|&uc| mean_coef * uc * inv_n).collect();
    let orders = v.len();
    let mut w = vec![0.0f32; orders * d];
    let mut cprev = vec![0.0f32; orders * d];
    for (idx, vj) in v.iter().enumerate() {
        let j = (idx + 2) as f32;
        for col in 0..d {
            w[idx * d + col] = gout * coef[idx] * vj[col] * j * inv_n;
            cprev[idx * d + col] = c[idx][col]; // C_{j-1}
        }
    }

    #[cfg(target_arch = "x86_64")]
    let avx2 = std::arch::is_x86_feature_detected!("avx2");
    #[cfg(not(target_arch = "x86_64"))]
    let avx2 = false;
    let z_data = z.as_slice();
    grad.as_mut_slice()
        .par_chunks_mut(d * GRAD_ROW_BLOCK)
        .enumerate()
        .for_each(|(blk, gchunk)| {
            cmd_grad_rows_dyn(
                avx2,
                orders,
                z_data,
                &m,
                &g0,
                &w,
                &cprev,
                d,
                blk * GRAD_ROW_BLOCK,
                gchunk,
            );
        });
    grad
}

/// Per-order reference implementation of [`cmd_grad_weighted`]: one
/// `central_moments` sweep per order and the unhoisted per-element
/// expression, exactly the pre-fusion kernel. Kept as the bit-identity
/// oracle for the fused/SIMD path.
pub fn cmd_grad_ref(
    z: &Matrix,
    targets: &CmdTargets,
    width: f32,
    gout: f32,
    mean_scale: f32,
) -> Matrix {
    assert!(width > 0.0, "cmd_grad: width must be positive");
    let (n, d) = z.shape();
    let mut grad = Matrix::zeros(n, d);
    if n == 0 || d == 0 {
        return grad;
    }
    let max_order = targets.max_order();
    let m = column_means(z);

    let mut c: Vec<Vec<f32>> = Vec::with_capacity(max_order as usize);
    c.push(vec![0.0; d]);
    for j in 2..=max_order {
        c.push(central_moments(z, &m, j));
    }

    let mean_norm = l2_distance(&m, &targets.mean);
    let u: Vec<f32> = if mean_norm > 0.0 {
        m.iter()
            .zip(&targets.mean)
            .map(|(a, b)| (a - b) / mean_norm)
            .collect()
    } else {
        vec![0.0; d]
    };

    let mut v: Vec<Vec<f32>> = Vec::with_capacity(max_order as usize - 1);
    let mut coef: Vec<f32> = Vec::with_capacity(max_order as usize - 1);
    let mut wj = width;
    for (idx, s_j) in targets.moments.iter().enumerate() {
        let c_j = &c[idx + 1];
        wj *= width;
        let norm = l2_distance(c_j, s_j);
        if norm > 0.0 {
            v.push(c_j.iter().zip(s_j).map(|(a, b)| (a - b) / norm).collect());
        } else {
            v.push(vec![0.0; d]);
        }
        coef.push(1.0 / wj);
    }

    let inv_n = 1.0 / n as f32;
    let z_data = z.as_slice();
    let mean_coef = mean_scale * gout / width;
    for (r, grow) in grad.as_mut_slice().chunks_mut(d).enumerate() {
        let zrow = &z_data[r * d..(r + 1) * d];
        for col in 0..d {
            let diff = zrow[col] - m[col];
            let mut g = mean_coef * u[col] * inv_n;
            let mut p = diff;
            for (idx, vj) in v.iter().enumerate() {
                let j = (idx + 2) as f32;
                let c_prev = c[idx][col];
                g += gout * coef[idx] * vj[col] * j * inv_n * (p - c_prev);
                p *= diff;
            }
            grow[col] += g;
        }
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::finite_diff_check;
    use fedomd_tensor::rng::seeded;

    fn z(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        fedomd_tensor::init::standard_normal(rows, cols, &mut rng).map(|v| v * 0.5)
    }

    fn targets(seed: u64, cols: usize) -> CmdTargets {
        CmdTargets::from_matrix(&z(23, cols, seed), 5)
    }

    #[test]
    fn distance_to_own_targets_is_zero() {
        let a = z(17, 6, 1);
        let t = CmdTargets::from_matrix(&a, 5);
        assert!(cmd_value(&a, &t, 1.0) < 1e-5);
    }

    #[test]
    fn distance_is_nonnegative_and_detects_shift() {
        let a = z(17, 6, 2);
        let shifted = a.map(|v| v + 1.0);
        let t = CmdTargets::from_matrix(&a, 5);
        assert!(cmd_value(&shifted, &t, 1.0) > 0.5);
    }

    #[test]
    fn width_downweights_higher_moments() {
        // With a larger width the same discrepancy costs less.
        let a = z(20, 4, 3);
        let t = targets(4, 4);
        let d1 = cmd_value(&a, &t, 1.0);
        let d5 = cmd_value(&a, &t, 5.0);
        assert!(d5 < d1);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let a = z(9, 4, 5);
        let t = targets(6, 4);
        let analytic = cmd_grad(&a, &t, 1.0, 1.0);
        finite_diff_check(|m| cmd_value(m, &t, 1.0), &a, &analytic, 1e-3, 2e-2);
    }

    #[test]
    fn gradient_with_nonunit_width_and_gout() {
        let a = z(7, 3, 8);
        let t = targets(9, 3);
        let gout = 2.5;
        let width = 2.0;
        let analytic = cmd_grad(&a, &t, width, gout);
        finite_diff_check(
            |m| gout * cmd_value(m, &t, width),
            &a,
            &analytic,
            1e-3,
            2e-2,
        );
    }

    #[test]
    fn gradient_at_own_targets_is_finite() {
        // At the minimum all norms are ~0; the subgradient must be 0/finite,
        // not NaN.
        let a = z(11, 4, 10);
        let t = CmdTargets::from_matrix(&a, 5);
        let g = cmd_grad(&a, &t, 1.0, 1.0);
        assert!(g.all_finite());
        assert!(g.max_abs() < 1e-3);
    }

    #[test]
    fn gradient_descends_the_distance() {
        let mut a = z(15, 5, 11);
        let t = targets(12, 5);
        let before = cmd_value(&a, &t, 1.0);
        for _ in 0..200 {
            let g = cmd_grad(&a, &t, 1.0, 1.0);
            fedomd_tensor::ops::axpy(&mut a, -0.05, &g);
        }
        let after = cmd_value(&a, &t, 1.0);
        assert!(
            after.is_finite() && after < before * 0.8,
            "descent failed: {before} -> {after}"
        );
    }

    #[test]
    fn max_order_respected() {
        let t = CmdTargets::from_matrix(&z(9, 3, 13), 3);
        assert_eq!(t.max_order(), 3);
        assert_eq!(t.moments.len(), 2);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let a = z(4, 2, 14);
        let t = targets(15, 2);
        let _ = cmd_value(&a, &t, 0.0);
    }
}

#[cfg(test)]
mod weighted_tests {
    use super::*;
    use crate::check::finite_diff_check;
    use fedomd_tensor::rng::seeded;

    #[test]
    fn weighted_gradient_matches_finite_differences() {
        let mut rng = seeded(31);
        let z = fedomd_tensor::init::standard_normal(9, 4, &mut rng).map(|v| v * 0.5);
        let t = CmdTargets::from_matrix(
            &fedomd_tensor::init::standard_normal(11, 4, &mut seeded(32)).map(|v| v * 0.5),
            5,
        );
        for ms in [0.0f32, 0.1, 0.7] {
            let g = cmd_grad_weighted(&z, &t, 1.0, 1.0, ms);
            finite_diff_check(|m| cmd_value_weighted(m, &t, 1.0, ms), &z, &g, 1e-3, 2e-2);
        }
    }

    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_fused_value_is_bit_identical_to_ref(
            rows in 0usize..40, cols in 1usize..96, max_order in 1u32..=6,
            ms_idx in 0usize..3, seed in 0u64..300
        ) {
            let mean_scale = [0.0f32, 0.5, 1.0][ms_idx];
            // The fused one-sweep value path must agree bit-for-bit with
            // the per-order reference for ragged widths (cols crosses the
            // 64-column block boundary), rows == 0, every monomorphised
            // order count, and the weighted (mean_scale) variants.
            let z = Matrix::from_fn(rows, cols, |r, c| {
                let h = (r as u64 * 211 + c as u64 * 37 + seed * 971) % 1783;
                h as f32 / 1783.0 - 0.5
            });
            let t = CmdTargets::from_matrix(
                &Matrix::from_fn(rows.max(3), cols, |r, c| {
                    let h = (r as u64 * 97 + c as u64 * 59 + seed * 389) % 1511;
                    h as f32 / 1511.0 - 0.5
                }),
                max_order,
            );
            let fused = cmd_value_weighted(&z, &t, 1.5, mean_scale);
            let reference = cmd_value_ref(&z, &t, 1.5, mean_scale);
            prop_assert_eq!(fused.to_bits(), reference.to_bits());
        }

        #[test]
        fn prop_fused_grad_is_bit_identical_to_ref(
            rows in 0usize..80, cols in 1usize..96, max_order in 1u32..=6,
            ms_idx in 0usize..3, seed in 0u64..300
        ) {
            let mean_scale = [0.0f32, 0.5, 1.0][ms_idx];
            // Same pinning for the gradient: the monomorphised
            // AVX2-dispatched row kernel (rows up to 80 crosses the
            // 64-row block granule) vs the serial unhoisted reference.
            let z = Matrix::from_fn(rows, cols, |r, c| {
                let h = (r as u64 * 139 + c as u64 * 43 + seed * 677) % 1913;
                h as f32 / 1913.0 - 0.5
            });
            let t = CmdTargets::from_matrix(
                &Matrix::from_fn(rows.max(3), cols, |r, c| {
                    let h = (r as u64 * 83 + c as u64 * 71 + seed * 449) % 1297;
                    h as f32 / 1297.0 - 0.5
                }),
                max_order,
            );
            let fused = cmd_grad_weighted(&z, &t, 1.5, 0.7, mean_scale);
            let reference = cmd_grad_ref(&z, &t, 1.5, 0.7, mean_scale);
            prop_assert_eq!(fused.shape(), reference.shape());
            for (a, b) in fused.as_slice().iter().zip(reference.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn zero_mean_scale_ignores_mean_shift() {
        let mut rng = seeded(33);
        let z = fedomd_tensor::init::standard_normal(20, 3, &mut rng);
        let t = CmdTargets::from_matrix(&z, 5);
        // Shifting z changes the mean but not the central moments, so with
        // mean_scale = 0 the distance stays ~0.
        let shifted = z.map(|v| v + 3.0);
        assert!(cmd_value_weighted(&shifted, &t, 1.0, 0.0) < 1e-4);
        assert!(cmd_value_weighted(&shifted, &t, 1.0, 1.0) > 1.0);
    }
}
