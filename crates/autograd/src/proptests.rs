//! Property-based tests over the tape: algebraic identities that must hold
//! for any randomly-shaped computation, complementing the per-op
//! finite-difference checks in `tape.rs`.

#![cfg(test)]

use proptest::prelude::*;

use crate::tape::Tape;
use fedomd_tensor::Matrix;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    /// d(sum(A·B))/dA is linear in B: doubling B doubles the gradient.
    #[test]
    fn matmul_gradient_linear_in_other_operand(
        a in arb_matrix(3, 4), b in arb_matrix(4, 2)
    ) {
        let grad_for = |bm: &Matrix| {
            let mut t = Tape::new();
            let av = t.param(a.clone());
            let bv = t.constant(bm.clone());
            let c = t.matmul(av, bv);
            let ones_l = t.constant(Matrix::full(1, 3, 1.0));
            let ones_r = t.constant(Matrix::full(2, 1, 1.0));
            let s = t.matmul(ones_l, c);
            let s = t.matmul(s, ones_r);
            t.backward(s);
            t.grad(av).cloned().expect("grad")
        };
        let g1 = grad_for(&b);
        let b2 = fedomd_tensor::ops::scale(&b, 2.0);
        let g2 = grad_for(&b2);
        for (x, y) in g1.as_slice().iter().zip(g2.as_slice()) {
            prop_assert!((2.0 * x - y).abs() <= 1e-4 + 1e-3 * y.abs());
        }
    }

    /// backward(α·f) == α·backward(f).
    #[test]
    fn scale_commutes_with_backward(a in arb_matrix(3, 3), alpha in -3.0f32..3.0) {
        let grad_for = |scale: Option<f32>| {
            let mut t = Tape::new();
            let av = t.param(a.clone());
            let sq = t.matmul(av, av);
            let ones_l = t.constant(Matrix::full(1, 3, 1.0));
            let ones_r = t.constant(Matrix::full(3, 1, 1.0));
            let s = t.matmul(ones_l, sq);
            let mut s = t.matmul(s, ones_r);
            if let Some(al) = scale {
                s = t.scale(s, al);
            }
            t.backward(s);
            t.grad(av).cloned().expect("grad")
        };
        let g = grad_for(None);
        let ga = grad_for(Some(alpha));
        for (x, y) in g.as_slice().iter().zip(ga.as_slice()) {
            prop_assert!((alpha * x - y).abs() <= 1e-3 + 1e-3 * y.abs());
        }
    }

    /// Gradient of a sum of two losses equals the sum of the separate
    /// gradients (additivity of reverse accumulation).
    #[test]
    fn gradients_are_additive_over_losses(a in arb_matrix(4, 3)) {
        let target1 = Matrix::full(4, 3, 0.5);
        let target2 = Matrix::full(4, 3, -0.25);
        let grad_for = |use1: bool, use2: bool| {
            let mut t = Tape::new();
            let av = t.param(a.clone());
            let l1 = t.sq_diff(av, &target1);
            let l2 = t.sq_diff(av, &target2);
            let loss = match (use1, use2) {
                (true, true) => t.add(l1, l2),
                (true, false) => l1,
                (false, true) => l2,
                _ => unreachable!(),
            };
            t.backward(loss);
            t.grad(av).cloned().expect("grad")
        };
        let g_both = grad_for(true, true);
        let g1 = grad_for(true, false);
        let g2 = grad_for(false, true);
        for ((b, x), y) in g_both.as_slice().iter().zip(g1.as_slice()).zip(g2.as_slice()) {
            prop_assert!((b - (x + y)).abs() <= 1e-4);
        }
    }

    /// ReLU gradient is a sub-mask of the incoming gradient: it never
    /// flips sign or grows magnitude.
    #[test]
    fn relu_gradient_is_contraction(a in arb_matrix(5, 5)) {
        let mut t = Tape::new();
        let av = t.param(a.clone());
        let r = t.relu(av);
        let ones_l = t.constant(Matrix::full(1, 5, 1.0));
        let ones_r = t.constant(Matrix::full(5, 1, 1.0));
        let s = t.matmul(ones_l, r);
        let s = t.matmul(s, ones_r);
        t.backward(s);
        let g = t.grad(av).expect("grad");
        for (&gv, &xv) in g.as_slice().iter().zip(a.as_slice()) {
            if xv > 0.0 {
                prop_assert!((gv - 1.0).abs() < 1e-6);
            } else {
                prop_assert_eq!(gv, 0.0);
            }
        }
    }

    /// Cross-entropy of one-hot-confident logits tends to zero, and its
    /// gradient pushes the true-class logit up (negative gradient).
    #[test]
    fn cross_entropy_gradient_signs(label in 0usize..3) {
        let mut logits = Matrix::zeros(1, 3);
        logits[(0, label)] = 5.0;
        let mut t = Tape::new();
        let lv = t.param(logits);
        let loss = t.softmax_cross_entropy(lv, &[label], &[0]);
        prop_assert!(t.scalar(loss) < 0.05);
        t.backward(loss);
        let g = t.grad(lv).expect("grad");
        prop_assert!(g[(0, label)] < 0.0, "true-class gradient must be negative");
        for c in 0..3 {
            if c != label {
                prop_assert!(g[(0, c)] > 0.0);
            }
        }
    }
}
