//! A reusable buffer pool for tape intermediates and gradients.
//!
//! Every optimisation step allocates a few dozen matrices — forward values,
//! backward deltas, gradient accumulators — whose shapes repeat exactly
//! from step to step. A [`Workspace`] keeps those `Vec<f32>` backing
//! buffers alive between steps, keyed by element count, so a steady-state
//! training loop touches the allocator only on its very first step.
//!
//! The pool is **content-agnostic**: buffers come back with stale garbage
//! and the taker overwrites every element (the `*_into` kernels zero-fill,
//! [`Workspace::take_copy`] copies, [`Workspace::take_zeroed`] clears).
//! Because every write path produces exactly the bytes the allocating path
//! would have produced, a pooled step is bit-identical to an unpooled one.
//!
//! The workspace also caches CSR transposes: the backward rule of `Ŝ·X`
//! multiplies by `Ŝᵀ`, and recomputing the transpose from scratch every
//! step dwarfs the SpMM itself on small graphs. Entries are keyed by
//! `Arc` pointer identity *and keep the source `Arc` alive*, so a freed
//! allocation can never alias a stale cache slot.

use std::collections::HashMap;
use std::sync::Arc;

use fedomd_sparse::Csr;
use fedomd_tensor::Matrix;

/// Buffers retained per element-count class; beyond this, extra buffers
/// are simply dropped. A two-layer model's step needs well under this
/// many live buffers of any one size.
const MAX_PER_CLASS: usize = 32;

/// Cached CSR transposes (a federation client sees one or two distinct
/// propagation operators; FedLIT's per-type operators are the most at 3).
const MAX_TRANSPOSES: usize = 8;

/// A size-keyed pool of `f32` buffers plus a CSR-transpose cache,
/// recycled across optimisation steps, epochs, and federated rounds.
///
/// A `Workspace` is plain data (`Send`), so each simulated client can own
/// one and carry it across rayon worker threads between rounds.
#[derive(Default)]
pub struct Workspace {
    pool: HashMap<usize, Vec<Vec<f32>>>,
    transposes: Vec<(Arc<Csr>, Arc<Csr>)>,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pooled buffers (diagnostics/tests).
    pub fn pooled_buffers(&self) -> usize {
        self.pool.values().map(Vec::len).sum()
    }

    /// Number of cached transposes (diagnostics/tests).
    pub fn cached_transposes(&self) -> usize {
        self.transposes.len()
    }

    fn take_buf(&mut self, len: usize) -> Vec<f32> {
        match self.pool.get_mut(&len).and_then(Vec::pop) {
            Some(buf) => buf,
            None => vec![0.0; len],
        }
    }

    /// A `rows × cols` matrix with **unspecified contents** — the caller
    /// must overwrite every element (e.g. via a `*_into` kernel).
    pub fn take_uninit(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.take_buf(rows * cols))
    }

    /// A `rows × cols` matrix of zeros.
    pub fn take_zeroed(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut m = self.take_uninit(rows, cols);
        m.as_mut_slice().fill(0.0);
        m
    }

    /// A pooled copy of `src` (bitwise-equal contents).
    pub fn take_copy(&mut self, src: &Matrix) -> Matrix {
        let mut m = self.take_uninit(src.rows(), src.cols());
        m.as_mut_slice().copy_from_slice(src.as_slice());
        m
    }

    /// Returns a matrix's backing buffer to the pool.
    pub fn recycle(&mut self, m: Matrix) {
        let buf = m.into_vec();
        if buf.is_empty() {
            return;
        }
        let class = self.pool.entry(buf.len()).or_default();
        if class.len() < MAX_PER_CLASS {
            class.push(buf);
        }
    }

    /// The transpose of `s`, computed once per distinct operator and
    /// cached. Keyed by `Arc` pointer identity; the cache holds a clone of
    /// the source `Arc`, so the key can never dangle or be reused by a new
    /// allocation while the entry lives.
    pub fn transposed(&mut self, s: &Arc<Csr>) -> Arc<Csr> {
        if let Some((_, t)) = self.transposes.iter().find(|(src, _)| Arc::ptr_eq(src, s)) {
            return t.clone();
        }
        let t = Arc::new(s.transpose());
        if self.transposes.len() >= MAX_TRANSPOSES {
            self.transposes.remove(0);
        }
        self.transposes.push((s.clone(), t.clone()));
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroed_is_clean_after_dirty_recycle() {
        let mut ws = Workspace::new();
        let mut m = ws.take_uninit(2, 3);
        m.as_mut_slice().fill(f32::NAN);
        ws.recycle(m);
        assert_eq!(ws.pooled_buffers(), 1);
        let z = ws.take_zeroed(3, 2);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(ws.pooled_buffers(), 0, "the 6-element buffer was reused");
    }

    #[test]
    fn take_copy_is_bitwise_equal() {
        let mut ws = Workspace::new();
        let src = Matrix::from_vec(1, 4, vec![1.5, -0.0, f32::NAN, f32::INFINITY]);
        let cp = ws.take_copy(&src);
        for (a, b) in cp.as_slice().iter().zip(src.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn pool_reuses_only_matching_sizes() {
        let mut ws = Workspace::new();
        ws.recycle(Matrix::zeros(2, 2));
        let _ = ws.take_uninit(3, 3); // different size: fresh allocation
        assert_eq!(ws.pooled_buffers(), 1, "4-element buffer still pooled");
        let _ = ws.take_uninit(1, 4); // same element count, different shape
        assert_eq!(ws.pooled_buffers(), 0, "keyed by element count");
    }

    #[test]
    fn class_size_is_capped() {
        let mut ws = Workspace::new();
        for _ in 0..(MAX_PER_CLASS + 10) {
            ws.recycle(Matrix::zeros(1, 5));
        }
        assert_eq!(ws.pooled_buffers(), MAX_PER_CLASS);
    }

    #[test]
    fn empty_matrices_are_not_pooled() {
        let mut ws = Workspace::new();
        ws.recycle(Matrix::zeros(0, 3));
        assert_eq!(ws.pooled_buffers(), 0);
    }

    #[test]
    fn transpose_cache_hits_by_pointer_identity() {
        let s = Arc::new(fedomd_sparse::normalized_adjacency(
            4,
            &[(0, 1), (1, 2), (2, 3)],
        ));
        let mut ws = Workspace::new();
        let t1 = ws.transposed(&s);
        let t2 = ws.transposed(&s);
        assert!(Arc::ptr_eq(&t1, &t2), "second lookup must hit the cache");
        assert_eq!(ws.cached_transposes(), 1);
        // A structurally identical but distinct Arc is a different key.
        let s2 = Arc::new(fedomd_sparse::normalized_adjacency(
            4,
            &[(0, 1), (1, 2), (2, 3)],
        ));
        let t3 = ws.transposed(&s2);
        assert!(!Arc::ptr_eq(&t1, &t3));
        assert_eq!(ws.cached_transposes(), 2);
    }

    #[test]
    fn transpose_cache_evicts_oldest_at_cap() {
        let mut ws = Workspace::new();
        let arcs: Vec<Arc<Csr>> = (0..MAX_TRANSPOSES + 2)
            .map(|i| Arc::new(fedomd_sparse::normalized_adjacency(2 + i, &[(0, 1)])))
            .collect();
        for s in &arcs {
            let _ = ws.transposed(s);
        }
        assert_eq!(ws.cached_transposes(), MAX_TRANSPOSES);
        // The first two were evicted; the rest still hit.
        let before = ws.cached_transposes();
        let _ = ws.transposed(&arcs[MAX_TRANSPOSES + 1]);
        assert_eq!(ws.cached_transposes(), before);
    }

    #[test]
    fn transposed_matches_direct_transpose() {
        let s = Arc::new(fedomd_sparse::normalized_adjacency(
            5,
            &[(0, 2), (1, 3), (2, 4)],
        ));
        let mut ws = Workspace::new();
        let t = ws.transposed(&s);
        let direct = s.transpose();
        let x = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32 * 0.1);
        let a = t.spmm(&x);
        let b = direct.spmm(&x);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }
}
