//! Finite-difference gradient checking, used throughout the test suites of
//! this crate and of `fedomd-nn` to validate every analytic backward rule.

use fedomd_tensor::Matrix;

/// Checks `analytic ≈ ∂f/∂x` by central differences.
///
/// For every element, perturbs `x` by `±eps` and compares the slope with the
/// analytic gradient using a mixed absolute/relative tolerance. Panics with
/// a located message on the first mismatch — intended for tests.
pub fn finite_diff_check(
    f: impl Fn(&Matrix) -> f32,
    x: &Matrix,
    analytic: &Matrix,
    eps: f32,
    tol: f32,
) {
    assert_eq!(
        x.shape(),
        analytic.shape(),
        "finite_diff_check: shape mismatch"
    );
    let (rows, cols) = x.shape();
    for r in 0..rows {
        for c in 0..cols {
            let mut xp = x.clone();
            xp[(r, c)] += eps;
            let mut xm = x.clone();
            xm[(r, c)] -= eps;
            let numeric = (f(&xp) - f(&xm)) / (2.0 * eps);
            let a = analytic[(r, c)];
            let scale = 1.0f32.max(a.abs()).max(numeric.abs());
            assert!(
                (numeric - a).abs() <= tol * scale,
                "gradient mismatch at ({r},{c}): numeric {numeric} vs analytic {a} (tol {tol})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_correct_gradient_of_quadratic() {
        // f(x) = Σ x², ∂f/∂x = 2x.
        let x = Matrix::from_vec(2, 2, vec![1.0, -2.0, 0.5, 3.0]);
        let grad = x.map(|v| 2.0 * v);
        finite_diff_check(
            |m| m.as_slice().iter().map(|v| v * v).sum(),
            &x,
            &grad,
            1e-3,
            1e-3,
        );
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn rejects_wrong_gradient() {
        let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let wrong = x.map(|v| 3.0 * v);
        finite_diff_check(
            |m| m.as_slice().iter().map(|v| v * v).sum(),
            &x,
            &wrong,
            1e-3,
            1e-3,
        );
    }
}
