//! Tape-based reverse-mode automatic differentiation.
//!
//! This crate replaces the autograd engine of the framework the paper runs
//! on. A [`Tape`] records a DAG of matrix operations executed eagerly
//! (values are computed at record time); [`Tape::backward`] then walks the
//! tape in reverse, accumulating gradients into every parameter node.
//!
//! The op set is exactly what the paper's models and losses need:
//! dense/sparse products, bias broadcast, ReLU, softmax cross-entropy over
//! masked node sets, the orthogonality penalty `‖WWᵀ − I‖_F` (paper Eq. 6),
//! the CMD distance (paper Eq. 11) with analytic gradients through the
//! client-side means and central moments, and the proximal penalty used by
//! the FedProx baseline.
//!
//! Design notes: nodes are addressed by index ([`Var`] is `Copy`), so the
//! tape is `Send` and each simulated client can differentiate on its own
//! rayon worker with zero shared state.
//!
//! Every intermediate a tape produces is drawn from a [`Workspace`] — a
//! size-keyed buffer pool carried across steps via
//! [`Tape::with_workspace`] / [`Tape::recycle`] — so a steady-state
//! training loop reuses the same allocations round after round. Pooled
//! and unpooled execution are bit-identical (see the `workspace` module
//! docs for the argument).

pub mod check;
pub mod cmd;
pub mod tape;
pub mod workspace;

pub use cmd::CmdTargets;
pub use tape::{Tape, Var};
pub use workspace::Workspace;

#[cfg(test)]
mod proptests;
