//! [`InProcChannel`]: the default, fault-free transport.
//!
//! Frames travel as encoded bytes through plain `VecDeque` buffers — one
//! uplink queue shared by all clients, one downlink queue per client — and
//! are decoded on arrival. The channel is driven single-threaded through
//! `&mut self` (the `Channel` trait's contract), so there is nothing to
//! synchronize: queues are just memory, sends cannot fail, and the
//! lock-free path keeps the fault-free baseline trivially allocation- and
//! panic-free. Because the `f32` wire format is bit-exact and
//! [`server_collect`](crate::Channel::server_collect) returns envelopes in
//! sender order (the order the lockstep loop uploaded them in), a training
//! run over this channel is bit-identical to one passing values by direct
//! function call. Nothing is ever dropped, reordered, or delayed.

use std::collections::VecDeque;

use crate::channel::{decode_round, Channel, ChannelState, NetStats};
use crate::frame::Envelope;

/// Fault-free in-process channel over plain byte queues.
pub struct InProcChannel {
    up: VecDeque<Vec<u8>>,
    /// Downlink queue per client, grown on first use.
    down: Vec<VecDeque<Vec<u8>>>,
    stats: NetStats,
}

impl InProcChannel {
    /// Creates a channel; client queues are allocated lazily.
    pub fn new() -> Self {
        Self {
            up: VecDeque::new(),
            down: Vec::new(),
            stats: NetStats::default(),
        }
    }

    fn down_queue(&mut self, client: u32) -> &mut VecDeque<Vec<u8>> {
        let idx = client as usize;
        while self.down.len() <= idx {
            self.down.push(VecDeque::new());
        }
        &mut self.down[idx]
    }

    fn record_send(&mut self, bytes: usize) {
        self.stats.sent_frames += 1;
        self.stats.sent_bytes += bytes as u64;
        self.stats.delivered_frames += 1;
        self.stats.delivered_bytes += bytes as u64;
    }
}

impl Default for InProcChannel {
    fn default() -> Self {
        Self::new()
    }
}

impl Channel for InProcChannel {
    fn upload(&mut self, env: Envelope) -> usize {
        let frame = env.encode();
        let n = frame.len();
        self.up.push_back(frame);
        self.record_send(n);
        n
    }

    fn server_collect(&mut self, round: u64) -> Vec<Envelope> {
        let frames: Vec<Vec<u8>> = self.up.drain(..).collect();
        decode_round(&frames, round)
    }

    fn download(&mut self, to: u32, env: Envelope) -> usize {
        let frame = env.encode();
        let n = frame.len();
        self.down_queue(to).push_back(frame);
        self.record_send(n);
        n
    }

    fn client_collect(&mut self, id: u32, round: u64) -> Vec<Envelope> {
        let frames: Vec<Vec<u8>> = match self.down.get_mut(id as usize) {
            Some(q) => q.drain(..).collect(),
            None => Vec::new(),
        };
        decode_round(&frames, round)
    }

    fn stats(&self) -> NetStats {
        self.stats
    }

    /// The channel draws no randomness, so only the cumulative counters
    /// need restoring for resumed accounting to continue exactly.
    fn restore_state(&mut self, state: &ChannelState) {
        self.stats = state.stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Control, Payload, Tensor, SERVER_SENDER};

    fn weight_env(round: u64, sender: u32, v: f32) -> Envelope {
        Envelope {
            round,
            sender,
            payload: Payload::WeightUpdate {
                params: vec![Tensor {
                    rows: 1,
                    cols: 2,
                    data: vec![v, -v],
                }],
            },
        }
    }

    #[test]
    fn uploads_arrive_sender_sorted_and_intact() {
        let mut ch = InProcChannel::new();
        // Upload out of order; collection must sort by sender.
        for &s in &[2u32, 0, 1] {
            ch.upload(weight_env(4, s, s as f32 + 0.5));
        }
        let got = ch.server_collect(4);
        assert_eq!(got.len(), 3);
        for (i, env) in got.iter().enumerate() {
            assert_eq!(env.sender, i as u32);
            assert_eq!(env.round, 4);
            match &env.payload {
                Payload::WeightUpdate { params } => {
                    assert_eq!(params[0].data[0], i as f32 + 0.5);
                }
                other => panic!("unexpected {}", other.kind()),
            }
        }
        // Queue drained: a second collect sees nothing.
        assert!(ch.server_collect(4).is_empty());
    }

    #[test]
    fn downlinks_are_per_client() {
        let mut ch = InProcChannel::new();
        ch.download(0, weight_env(1, SERVER_SENDER, 1.0));
        ch.download(2, weight_env(1, SERVER_SENDER, 3.0));
        assert_eq!(ch.client_collect(0, 1).len(), 1);
        assert!(ch.client_collect(1, 1).is_empty());
        assert_eq!(ch.client_collect(2, 1).len(), 1);
    }

    #[test]
    fn byte_counts_match_encoded_frames() {
        let mut ch = InProcChannel::new();
        let env = weight_env(0, 0, 1.0);
        let expect = env.encode().len();
        let n = ch.upload(env.clone());
        assert_eq!(n, expect);
        let m = ch.download(
            0,
            Envelope {
                payload: Payload::Control(Control::Ack),
                ..env
            },
        );
        let s = ch.stats();
        assert_eq!(s.sent_frames, 2);
        assert_eq!(s.sent_bytes, (n + m) as u64);
        assert_eq!(s.delivered_bytes, s.sent_bytes);
        assert_eq!(s.dropped_frames, 0);
        assert_eq!(s.retries, 0);
    }

    #[test]
    fn collect_for_unknown_client_is_empty() {
        let mut ch = InProcChannel::new();
        assert!(ch.client_collect(9, 0).is_empty());
        assert!(ch.server_collect(0).is_empty());
    }
}
