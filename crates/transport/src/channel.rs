//! The [`Channel`] abstraction: how envelopes move between the federated
//! server and its clients.
//!
//! The training loops are lockstep simulations (all clients advance one
//! round per iteration), so the channel API mirrors that shape: clients
//! [`upload`](Channel::upload), the server
//! [`server_collect`](Channel::server_collect)s whatever actually arrived,
//! the server [`download`](Channel::download)s, and each client
//! [`client_collect`](Channel::client_collect)s. Every message crosses the
//! boundary as encoded frame bytes — the byte counts the comms accounting
//! reports are the sizes of real serialised frames, not hand-counted
//! scalars — and faults surface as *missing envelopes* plus counters in
//! [`NetStats`], never as panics, so the round logic can degrade to
//! partial aggregation.

use crate::frame::Envelope;

/// Transport-level counters accumulated over a channel's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames handed to the channel for transmission, counting each
    /// retransmission attempt separately.
    pub sent_frames: u64,
    /// Bytes across all transmission attempts.
    pub sent_bytes: u64,
    /// Frames that reached their destination in time.
    pub delivered_frames: u64,
    /// Bytes of delivered frames.
    pub delivered_bytes: u64,
    /// Frames lost for good: every retry dropped, or the frame arrived
    /// after the receiver's round deadline.
    pub dropped_frames: u64,
    /// Retransmission attempts beyond each frame's first send.
    pub retries: u64,
}

/// Persistent channel state carried across a checkpoint/resume cycle.
///
/// This is everything a resumed run needs to replay the *remaining* rounds
/// exactly: the fault-stream cursor (so a simulated network draws the same
/// drop/jitter decisions it would have drawn uninterrupted) and the
/// cumulative counters (so drop accounting keeps counting from where it
/// was). In-flight frames are deliberately absent — snapshots are taken at
/// round boundaries, where every pending queue has been drained.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelState {
    /// Per-frame sequence number of the fault RNG stream
    /// ([`crate::SimNetChannel`]); 0 for channels without one.
    pub seq: u64,
    /// Cumulative transport counters at the snapshot.
    pub stats: NetStats,
}

/// A bidirectional star topology between one server and `n` clients.
///
/// `Send` is a supertrait so a `&mut dyn Channel` can cross into the
/// dedicated fold thread of a pipelined round (see `fedomd-federated`'s
/// `pipeline` module) — every existing channel is a plain data structure
/// or socket owner, so the bound costs nothing.
pub trait Channel: Send {
    /// Client `env.sender` uploads to the server. Returns the encoded
    /// frame size in bytes (what the client actually put on the wire).
    fn upload(&mut self, env: Envelope) -> usize;

    /// Server gathers this round's uploads. Under faults a subset of
    /// clients may be missing; the result is sorted by sender id so
    /// downstream aggregation order is deterministic.
    fn server_collect(&mut self, round: u64) -> Vec<Envelope>;

    /// Like [`Channel::server_collect`], but may return as soon as *at
    /// least one* current-round upload has been admitted rather than
    /// waiting for the whole cohort — the primitive a fold-on-arrival
    /// server loop polls so it can fold early uploads while stragglers
    /// are still training. Returns an empty batch only when the
    /// transport has concluded no further round-`round` uplink is
    /// coming (deadline passed, or every live peer already reported).
    /// The default simply delegates to the batch collect, which is
    /// correct (one "batch" containing everything) for lockstep
    /// in-process channels.
    fn server_collect_some(&mut self, round: u64) -> Vec<Envelope> {
        self.server_collect(round)
    }

    /// Server sends `env` to client `to`. Returns the encoded frame size.
    fn download(&mut self, to: u32, env: Envelope) -> usize;

    /// Server sends the same `env` to every client in `to`, in the given
    /// order. Returns the encoded frame size — the copies are identical,
    /// so total downlink traffic is `to.len()` times the return value
    /// (0 when `to` is empty). The default clones through
    /// [`Channel::download`]; transports with a real serialisation step
    /// override it to encode the frame once per broadcast instead of
    /// once per peer, which matters when the payload is a multi-megabyte
    /// global model.
    fn download_many(&mut self, to: &[u32], env: Envelope) -> usize {
        let mut n = 0;
        for &id in to {
            n = self.download(id, env.clone());
        }
        n
    }

    /// Client `id` gathers the frames addressed to it for `round`; empty
    /// when everything addressed to it was dropped.
    fn client_collect(&mut self, id: u32, round: u64) -> Vec<Envelope>;

    /// Number of peers the server can still expect round-`round` uplink
    /// from, when the transport tracks liveness (`None`: no liveness
    /// notion — assume the configured cohort). The server's round driver
    /// uses this to close a phase once every live peer has reported,
    /// instead of waiting out the phase deadline for parties the
    /// transport already knows are gone.
    fn awaited_peers(&self, round: u64) -> Option<usize> {
        let _ = round;
        None
    }

    /// Counters so far.
    fn stats(&self) -> NetStats;

    /// Snapshots the state a run checkpoint must carry so the resumed run
    /// replays the remaining rounds exactly. Call only at a round
    /// boundary, when no frames are in flight.
    fn export_state(&self) -> ChannelState {
        ChannelState {
            seq: 0,
            stats: self.stats(),
        }
    }

    /// Restores a snapshot taken by [`Channel::export_state`] into an
    /// equivalently configured, freshly constructed channel. The default
    /// is a no-op for stateless channels.
    fn restore_state(&mut self, state: &ChannelState) {
        let _ = state;
    }
}

/// Splits arrival-stamped items at a phase deadline: in-time items are
/// delivered (counted into `stats.delivered_*`), late ones are counted
/// dropped and discarded — the single code path that turns stragglers into
/// partial aggregation.
///
/// Both the virtual-time [`crate::SimNetChannel`] and the wall-clock TCP
/// channel (`fedomd-net`) route every admit/drop decision through here, so
/// "a frame that misses its phase deadline is dropped, and the counters
/// say so" means exactly the same thing on both transports. `arrival_ms`
/// is milliseconds since the phase opened (virtual or real);
/// `f64::INFINITY` marks a frame known to be late regardless of the
/// deadline (e.g. one that surfaced after its round already closed).
pub fn admit_by_deadline<T>(
    pending: Vec<(f64, T)>,
    deadline_ms: f64,
    stats: &mut NetStats,
    size_of: impl Fn(&T) -> usize,
) -> Vec<T> {
    let mut in_time = Vec::new();
    for (arrival, item) in pending {
        if arrival <= deadline_ms {
            stats.delivered_frames += 1;
            stats.delivered_bytes += size_of(&item) as u64;
            in_time.push(item);
        } else {
            stats.dropped_frames += 1;
        }
    }
    in_time
}

/// Decodes raw frames, keeps those stamped with `round`, sorted by sender.
///
/// Frames are produced by [`Envelope::encode`] inside the same process, so
/// a decode failure is a codec bug, not a network fault — it panics rather
/// than being silently dropped.
pub(crate) fn decode_round(frames: &[Vec<u8>], round: u64) -> Vec<Envelope> {
    let mut out: Vec<Envelope> = frames
        .iter()
        // LINT: allow(panic) frames come from `Envelope::encode` in the
        // same process (see doc above): a decode failure is a codec bug
        // that must fail loudly, not a recoverable network fault.
        .map(|bytes| Envelope::decode(bytes).expect("in-process frame must decode"))
        .filter(|env| env.round == round)
        .collect();
    out.sort_by_key(|env| env.sender);
    out
}
