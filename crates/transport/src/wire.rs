//! Little-endian byte codec primitives and the frame checksum.
//!
//! Everything on the wire is written through [`ByteWriter`] and read back
//! through [`ByteReader`]; both are deliberately dumb (no varints, no
//! alignment) so the encoded size of a message is a closed-form function
//! of its shape — the property the communication accounting relies on.

use std::fmt;

/// Decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the declared structure did.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that remained.
        available: usize,
    },
    /// First frame bytes are not the protocol magic.
    BadMagic(u32),
    /// Frame speaks a protocol version this build does not.
    BadVersion(u8),
    /// Checksum over header + payload does not match the trailer.
    BadChecksum {
        /// Checksum carried by the frame.
        stored: u32,
        /// Checksum recomputed from the received bytes.
        computed: u32,
    },
    /// Unknown message-type discriminant.
    UnknownMsgType(u8),
    /// A length prefix declares a frame larger than the receiver's cap —
    /// rejected before any allocation happens, so a hostile header cannot
    /// make the peer allocate gigabytes.
    FrameTooLarge {
        /// Declared frame length.
        declared: u64,
        /// Receiver's configured maximum.
        max: u64,
    },
    /// Structurally invalid payload (bad length fields, non-UTF-8, ...).
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated frame: needed {needed} bytes, {available} available"
                )
            }
            WireError::BadMagic(got) => write!(f, "bad magic {got:#010x}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadChecksum { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: frame says {stored:#010x}, computed {computed:#010x}"
                )
            }
            WireError::UnknownMsgType(t) => write!(f, "unknown message type {t}"),
            WireError::FrameTooLarge { declared, max } => {
                write!(f, "declared frame length {declared} exceeds the cap {max}")
            }
            WireError::Malformed(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Appends little-endian primitives to a growable buffer.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// An empty writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f32` as its IEEE-754 bits, little-endian (lossless).
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length-prefixed (`u32`) run of `f32`s.
    pub fn put_f32_slice(&mut self, vs: &[f32]) {
        self.put_u32(vs.len() as u32);
        self.buf.reserve(vs.len() * 4);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Writes a length-prefixed (`u32`) UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes raw bytes with no prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Overwrites 4 bytes at `at` with a little-endian `u32` (for
    /// back-patching length fields).
    pub fn patch_u32(&mut self, at: usize, v: u32) {
        self.buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }
}

/// Reads little-endian primitives from a byte slice, tracking position.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current offset from the start of the slice.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// [`Self::take`] as a fixed-size array, for `from_le_bytes`. The
    /// conversion cannot fail after `take(N)` succeeded, but mapping the
    /// mismatch into [`WireError`] keeps the reader panic-free on any
    /// input.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let s = self.take(N)?;
        <[u8; N]>::try_from(s).map_err(|_| WireError::Truncated {
            needed: N,
            available: s.len(),
        })
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`, little-endian.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take_array::<2>()?))
    }

    /// Reads a `u32`, little-endian.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_array::<4>()?))
    }

    /// Reads a `u64`, little-endian.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_array::<8>()?))
    }

    /// Reads an `f32` from its IEEE-754 bits, little-endian.
    pub fn get_f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take_array::<4>()?))
    }

    /// Reads a length-prefixed run of `f32`s.
    pub fn get_f32_vec(&mut self) -> Result<Vec<f32>, WireError> {
        let n = self.get_u32()? as usize;
        // Bound check up front so a corrupt length can't trigger a huge
        // allocation before the truncation is noticed.
        if self.remaining() < n * 4 {
            return Err(WireError::Truncated {
                needed: n * 4,
                available: self.remaining(),
            });
        }
        // One bulk take, then a chunked conversion the compiler can
        // vectorise — per-element reads carry position bookkeeping that
        // dominates decode time on multi-megabyte weight frames.
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let n = self.get_u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("string field is not UTF-8".into()))
    }

    /// Reads `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Fails unless every byte has been consumed.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed(format!(
                "{} unexpected trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Slice-by-8 lookup tables for [`crc32`], built at compile time.
///
/// `CRC_TABLES[0]` is the classic single-byte table; `CRC_TABLES[j]`
/// advances a byte's contribution `j` extra positions, so eight table
/// lookups retire eight message bytes per step.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & (crc & 1).wrapping_neg());
            k += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[j - 1][i];
            t[j][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
};

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over `bytes`.
///
/// Detects any single-bit or single-byte corruption of a frame, which the
/// codec property tests exercise directly. Implemented slice-by-8 (eight
/// bytes per table step) because every weight frame is checksummed twice —
/// once on encode, once on decode — and at multi-megabyte model frames the
/// former bit-serial loop dominated round latency on the wire.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_f32(-1.5e-7);
        w.put_str("naïve");
        w.put_f32_slice(&[1.0, -2.5, 3.25]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0x1234);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32().unwrap().to_bits(), (-1.5e-7f32).to_bits());
        assert_eq!(r.get_str().unwrap(), "naïve");
        assert_eq!(r.get_f32_vec().unwrap(), vec![1.0, -2.5, 3.25]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = ByteWriter::new();
        w.put_u32(7);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..2]);
        assert_eq!(
            r.get_u32(),
            Err(WireError::Truncated {
                needed: 4,
                available: 2
            })
        );
    }

    #[test]
    fn corrupt_vec_length_is_not_a_huge_allocation() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_f32_vec(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_matches_the_bit_serial_reference() {
        // The pre-table implementation, kept as the ground truth the
        // slice-by-8 tables must reproduce on every length mod 8.
        fn reference(bytes: &[u8]) -> u32 {
            let mut crc = !0u32;
            for &b in bytes {
                crc ^= b as u32;
                for _ in 0..8 {
                    let mask = (crc & 1).wrapping_neg();
                    crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
                }
            }
            !crc
        }
        let data: Vec<u8> = (0..1021u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        for len in [0, 1, 7, 8, 9, 15, 16, 63, 64, 1000, 1021] {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn crc32_detects_single_byte_flips() {
        let data = b"federated moment constraints".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            let mut corrupted = data.clone();
            corrupted[i] ^= 0x40;
            assert_ne!(crc32(&corrupted), base, "flip at byte {i} undetected");
        }
    }
}
