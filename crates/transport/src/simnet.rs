//! [`SimNetChannel`]: a deterministic simulated network.
//!
//! The simulation runs on *virtual* time — no wall-clock sleeps — so tests
//! are fast and exactly reproducible. Each lockstep communication phase
//! restarts the virtual clock at zero: all sends in the phase depart
//! simultaneously, each frame accrues per-link latency, jitter, and
//! exponential-backoff retransmission delays, and the receiver's collect
//! call admits only frames whose accumulated arrival time beats the round
//! deadline. Faults therefore surface exactly as they do on a real
//! network: as frames that never show up.
//!
//! Every random decision (drop, jitter) draws from a ChaCha stream keyed
//! by the config seed and a per-frame sequence number, so a given seed
//! replays the identical fault pattern — the property the partial
//! aggregation tests rely on.

use rand::Rng;

use crate::channel::{admit_by_deadline, decode_round, Channel, ChannelState, NetStats};
use crate::frame::Envelope;
use fedomd_tensor::rng::{derive, seeded};

/// Knobs of the simulated fault model. All times are virtual milliseconds.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Seed of the fault stream; same seed ⇒ same drops and latencies.
    pub seed: u64,
    /// Probability that any single transmission attempt is lost.
    pub drop_prob: f64,
    /// Deterministic per-link one-way latency.
    pub base_latency_ms: f64,
    /// Uniform extra latency in `[0, jitter_ms)` per attempt.
    pub jitter_ms: f64,
    /// Clients whose links run `straggler_factor` times slower.
    pub straggler_ids: Vec<u32>,
    /// Latency multiplier applied to straggler links.
    pub straggler_factor: f64,
    /// Retransmissions after a dropped attempt before giving up.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles on each further retry.
    pub backoff_ms: f64,
    /// Server/client deadline per communication phase: frames arriving
    /// later are counted dropped and never delivered (the hook that
    /// degrades a round to partial aggregation).
    pub round_timeout_ms: f64,
}

impl Default for FaultConfig {
    /// A healthy network: nothing drops, 1 ms links, effectively no
    /// deadline. Useful as a base for `FaultConfig { drop_prob: 0.2,
    /// ..Default::default() }`-style overrides.
    fn default() -> Self {
        Self {
            seed: 0,
            drop_prob: 0.0,
            base_latency_ms: 1.0,
            jitter_ms: 0.0,
            straggler_ids: Vec::new(),
            straggler_factor: 10.0,
            max_retries: 2,
            backoff_ms: 5.0,
            round_timeout_ms: 1e12,
        }
    }
}

/// A frame in flight: virtual arrival time plus its bytes.
type InFlight = (f64, Vec<u8>);

/// Simulated lossy star network between a server and its clients.
pub struct SimNetChannel {
    cfg: FaultConfig,
    /// Per-frame sequence number keying the fault RNG stream.
    seq: u64,
    up_pending: Vec<InFlight>,
    down_pending: Vec<Vec<InFlight>>,
    stats: NetStats,
}

impl SimNetChannel {
    /// Creates a channel with the given fault model.
    ///
    /// # Panics
    /// Panics when `drop_prob` is outside `[0, 1]` or a latency knob is
    /// negative.
    pub fn new(cfg: FaultConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.drop_prob),
            "drop_prob must be in [0,1]"
        );
        assert!(cfg.base_latency_ms >= 0.0 && cfg.jitter_ms >= 0.0 && cfg.backoff_ms >= 0.0);
        Self {
            cfg,
            seq: 0,
            up_pending: Vec::new(),
            down_pending: Vec::new(),
            stats: NetStats::default(),
        }
    }

    /// The fault model actually in force (for logging/tests).
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Simulates transmitting `frame` over the link of client `endpoint`
    /// (the client end of the link, whichever direction the frame moves).
    /// Returns the virtual arrival time, or `None` when every attempt
    /// dropped.
    fn transmit(&mut self, endpoint: u32, frame_len: usize) -> Option<f64> {
        let mut rng = seeded(derive(self.cfg.seed, self.seq));
        self.seq += 1;

        let factor = if self.cfg.straggler_ids.contains(&endpoint) {
            self.cfg.straggler_factor
        } else {
            1.0
        };

        let mut depart = 0.0f64; // backoff accumulates departure time
        let mut backoff = self.cfg.backoff_ms;
        for attempt in 0..=self.cfg.max_retries {
            self.stats.sent_frames += 1;
            self.stats.sent_bytes += frame_len as u64;
            if attempt > 0 {
                self.stats.retries += 1;
            }
            let jitter = if self.cfg.jitter_ms > 0.0 {
                rng.gen_range(0.0..self.cfg.jitter_ms)
            } else {
                0.0
            };
            let latency = self.cfg.base_latency_ms * factor + jitter;
            let lost = self.cfg.drop_prob > 0.0 && rng.gen_bool(self.cfg.drop_prob);
            if !lost {
                return Some(depart + latency);
            }
            depart += backoff;
            backoff *= 2.0;
        }
        self.stats.dropped_frames += 1;
        None
    }

    /// Splits `pending` at the phase deadline via the shared
    /// [`admit_by_deadline`] helper: in-time frames are delivered, late
    /// ones are counted dropped (stragglers that missed the round).
    fn drain_by_deadline(&mut self, pending: Vec<InFlight>, round: u64) -> Vec<Envelope> {
        let in_time = admit_by_deadline(
            pending,
            self.cfg.round_timeout_ms,
            &mut self.stats,
            Vec::len,
        );
        decode_round(&in_time, round)
    }
}

impl Channel for SimNetChannel {
    fn upload(&mut self, env: Envelope) -> usize {
        let frame = env.encode();
        let n = frame.len();
        if let Some(arrival) = self.transmit(env.sender, n) {
            self.up_pending.push((arrival, frame));
        }
        n
    }

    fn server_collect(&mut self, round: u64) -> Vec<Envelope> {
        let pending = std::mem::take(&mut self.up_pending);
        self.drain_by_deadline(pending, round)
    }

    fn download(&mut self, to: u32, env: Envelope) -> usize {
        let frame = env.encode();
        let n = frame.len();
        if let Some(arrival) = self.transmit(to, n) {
            let idx = to as usize;
            while self.down_pending.len() <= idx {
                self.down_pending.push(Vec::new());
            }
            self.down_pending[idx].push((arrival, frame));
        }
        n
    }

    fn client_collect(&mut self, id: u32, round: u64) -> Vec<Envelope> {
        let pending = match self.down_pending.get_mut(id as usize) {
            Some(q) => std::mem::take(q),
            None => Vec::new(),
        };
        self.drain_by_deadline(pending, round)
    }

    fn stats(&self) -> NetStats {
        self.stats
    }

    fn export_state(&self) -> ChannelState {
        ChannelState {
            seq: self.seq,
            stats: self.stats,
        }
    }

    /// Restoring `seq` realigns the per-frame fault RNG stream, so the
    /// resumed channel draws exactly the drop/jitter decisions the
    /// uninterrupted one would have drawn from this point on.
    fn restore_state(&mut self, state: &ChannelState) {
        self.seq = state.seq;
        self.stats = state.stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Payload, Tensor};

    fn env(round: u64, sender: u32) -> Envelope {
        Envelope {
            round,
            sender,
            payload: Payload::WeightUpdate {
                params: vec![Tensor {
                    rows: 1,
                    cols: 3,
                    data: vec![1.0, 2.0, 3.0],
                }],
            },
        }
    }

    #[test]
    fn healthy_network_delivers_everything() {
        let mut ch = SimNetChannel::new(FaultConfig::default());
        for s in 0..5 {
            ch.upload(env(0, s));
        }
        let got = ch.server_collect(0);
        assert_eq!(got.len(), 5);
        assert_eq!(
            got.iter().map(|e| e.sender).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        let s = ch.stats();
        assert_eq!(s.dropped_frames, 0);
        assert_eq!(s.retries, 0);
        assert_eq!(s.delivered_frames, 5);
    }

    #[test]
    fn certain_loss_exhausts_retries_and_drops() {
        let cfg = FaultConfig {
            drop_prob: 1.0,
            max_retries: 2,
            ..Default::default()
        };
        let mut ch = SimNetChannel::new(cfg);
        ch.upload(env(0, 0));
        assert!(ch.server_collect(0).is_empty());
        let s = ch.stats();
        assert_eq!(s.dropped_frames, 1);
        assert_eq!(s.sent_frames, 3, "1 original + 2 retries");
        assert_eq!(s.retries, 2);
        assert_eq!(s.delivered_frames, 0);
    }

    #[test]
    fn lossy_network_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let cfg = FaultConfig {
                seed,
                drop_prob: 0.4,
                jitter_ms: 2.0,
                ..Default::default()
            };
            let mut ch = SimNetChannel::new(cfg);
            for round in 0..10u64 {
                for s in 0..4 {
                    ch.upload(env(round, s));
                }
                let got: Vec<u32> = ch.server_collect(round).iter().map(|e| e.sender).collect();
                // consume got into a fingerprint via stats below
                let _ = got;
            }
            ch.stats()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(
            run(7),
            run(8),
            "different seeds should give different fault patterns"
        );
    }

    #[test]
    fn lossy_network_recovers_some_frames_via_retry() {
        let cfg = FaultConfig {
            seed: 3,
            drop_prob: 0.5,
            max_retries: 3,
            ..Default::default()
        };
        let mut ch = SimNetChannel::new(cfg);
        let total = 40u64;
        for i in 0..total {
            ch.upload(env(0, i as u32));
        }
        let delivered = ch.server_collect(0).len() as u64;
        let s = ch.stats();
        assert_eq!(delivered + s.dropped_frames, total);
        assert!(
            s.retries > 0,
            "with 50% loss some first attempts must have failed"
        );
        // P(all 4 attempts lost) = 1/16, so most frames should make it.
        assert!(delivered > total / 2, "only {delivered}/{total} delivered");
    }

    #[test]
    fn straggler_misses_the_round_deadline() {
        let cfg = FaultConfig {
            straggler_ids: vec![1],
            straggler_factor: 100.0,
            base_latency_ms: 1.0,
            round_timeout_ms: 50.0,
            ..Default::default()
        };
        let mut ch = SimNetChannel::new(cfg);
        for s in 0..3 {
            ch.upload(env(2, s));
        }
        let got: Vec<u32> = ch.server_collect(2).iter().map(|e| e.sender).collect();
        assert_eq!(
            got,
            vec![0, 2],
            "client 1 (latency 100ms) must miss the 50ms deadline"
        );
        assert_eq!(ch.stats().dropped_frames, 1);
    }

    #[test]
    fn downlink_faults_are_per_client() {
        let cfg = FaultConfig {
            drop_prob: 1.0,
            max_retries: 0,
            ..Default::default()
        };
        let mut ch = SimNetChannel::new(cfg);
        ch.download(0, env(0, crate::frame::SERVER_SENDER));
        assert!(ch.client_collect(0, 0).is_empty());
        assert_eq!(ch.stats().dropped_frames, 1);
    }

    #[test]
    fn restored_channel_continues_the_fault_stream_exactly() {
        let cfg = FaultConfig {
            seed: 11,
            drop_prob: 0.4,
            jitter_ms: 2.0,
            ..Default::default()
        };
        let drive = |ch: &mut SimNetChannel, rounds: std::ops::Range<u64>| {
            let mut delivered = Vec::new();
            for round in rounds {
                for s in 0..4 {
                    ch.upload(env(round, s));
                }
                delivered.push(
                    ch.server_collect(round)
                        .iter()
                        .map(|e| e.sender)
                        .collect::<Vec<_>>(),
                );
            }
            delivered
        };

        // Uninterrupted reference run: 10 rounds straight through.
        let mut full = SimNetChannel::new(cfg.clone());
        let reference = drive(&mut full, 0..10);

        // Interrupted run: 5 rounds, snapshot, "crash", restore into a
        // fresh channel, 5 more rounds.
        let mut first = SimNetChannel::new(cfg.clone());
        let head = drive(&mut first, 0..5);
        let snap = first.export_state();
        let mut resumed = SimNetChannel::new(cfg);
        resumed.restore_state(&snap);
        let tail = drive(&mut resumed, 5..10);

        let stitched: Vec<_> = head.into_iter().chain(tail).collect();
        assert_eq!(stitched, reference, "fault pattern must continue exactly");
        assert_eq!(resumed.stats(), full.stats(), "counters must be cumulative");
        assert_eq!(resumed.export_state(), full.export_state());
    }

    #[test]
    fn backoff_delay_can_push_a_retry_past_the_deadline() {
        // Attempt 1 at t=0 drops; retry departs at t=backoff. With a
        // deadline tighter than backoff + latency, even a successful
        // retry is late. drop_prob=1 forces the first drop; retries also
        // drop, so the frame dies either way — here we check the timing
        // path with a seed where the retry succeeds.
        let cfg = FaultConfig {
            seed: 1,
            drop_prob: 0.5,
            max_retries: 5,
            backoff_ms: 100.0,
            base_latency_ms: 1.0,
            round_timeout_ms: 10.0,
            ..Default::default()
        };
        let mut ch = SimNetChannel::new(cfg);
        for s in 0..20 {
            ch.upload(env(0, s));
        }
        let got = ch.server_collect(0);
        let s = ch.stats();
        // Every delivered frame must have succeeded on its FIRST attempt:
        // any retry arrives at >= 100ms + 1ms > 10ms deadline.
        assert_eq!(got.len() as u64 + s.dropped_frames, 20);
        assert!(
            s.dropped_frames > 0,
            "some first attempts must drop at p=0.5"
        );
    }
}
