//! The FedOMD frame format: what one federated message looks like as bytes.
//!
//! ```text
//! ┌───────┬─────────┬──────────┬────────┬───────┬─────────────┬─────────┬───────┐
//! │ magic │ version │ msg_type │ sender │ round │ payload_len │ payload │ crc32 │
//! │  u32  │   u8    │    u8    │  u32   │  u64  │     u32     │  bytes  │  u32  │
//! └───────┴─────────┴──────────┴────────┴───────┴─────────────┴─────────┴───────┘
//! ```
//!
//! All integers and floats are little-endian ([`crate::wire`]). The
//! checksum covers every preceding byte (header *and* payload), so any
//! single-byte corruption anywhere in the frame is rejected at decode.
//! `f32` tensors travel as raw IEEE-754 bits, so an encode → decode cycle
//! is bit-exact — the property that lets the in-process channel reproduce
//! direct-function-call training runs bit for bit.

use crate::wire::{crc32, ByteReader, ByteWriter, WireError};
use fedomd_tensor::Matrix;

/// First four bytes of every frame (`"FOMD"` read as a LE `u32`).
pub const MAGIC: u32 = 0x444D_4F46;

/// Protocol version this build speaks.
pub const VERSION: u8 = 1;

/// `sender` value used by the server (clients use their index).
pub const SERVER_SENDER: u32 = u32::MAX;

/// Fixed bytes before the payload (magic + version + msg_type + sender +
/// round + payload_len).
pub const HEADER_BYTES: usize = 4 + 1 + 1 + 4 + 8 + 4;

/// Fixed bytes after the payload (the checksum).
pub const TRAILER_BYTES: usize = 4;

/// Default cap a receiver places on one frame's declared length (64 MiB).
///
/// A real FedOMD frame is bounded by the model size (a few MiB at the
/// paper's scale), so anything near this cap is corruption or hostility,
/// not a legitimate message.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Validates a length prefix read from an untrusted peer **before**
/// allocating a receive buffer for it.
///
/// Returns the length as a `usize` when it is within `(0, max]`; a zero
/// length is rejected too, since no valid frame is smaller than its fixed
/// header + trailer.
pub fn check_frame_len(declared: u32, max: u32) -> Result<usize, WireError> {
    if declared as usize > max as usize {
        return Err(WireError::FrameTooLarge {
            declared: declared as u64,
            max: max as u64,
        });
    }
    if (declared as usize) < HEADER_BYTES + TRAILER_BYTES {
        return Err(WireError::Truncated {
            needed: HEADER_BYTES + TRAILER_BYTES,
            available: declared as usize,
        });
    }
    Ok(declared as usize)
}

/// A dense tensor on the wire: shape plus row-major `f32` data.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    /// Number of rows.
    pub rows: u32,
    /// Number of columns.
    pub cols: u32,
    /// Row-major elements; `data.len() == rows * cols`.
    pub data: Vec<f32>,
}

impl From<&Matrix> for Tensor {
    fn from(m: &Matrix) -> Self {
        Self {
            rows: m.rows() as u32,
            cols: m.cols() as u32,
            data: m.as_slice().to_vec(),
        }
    }
}

impl Tensor {
    /// Converts back to a [`Matrix`].
    pub fn into_matrix(self) -> Matrix {
        Matrix::from_vec(self.rows as usize, self.cols as usize, self.data)
    }

    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.rows);
        w.put_u32(self.cols);
        for &v in &self.data {
            w.put_f32(v);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let rows = r.get_u32()?;
        let cols = r.get_u32()?;
        // Untrusted dims: count elements in u64 (u32 × u32 cannot
        // overflow it) and compare against the bytes actually present —
        // never against `n * 4`, which wraps for dims like 2³¹ × 2³¹ and
        // would wave a hostile header through to a capacity-overflow
        // panic in `Vec::with_capacity`.
        let n = rows as u64 * cols as u64;
        if n > (r.remaining() / 4) as u64 {
            return Err(WireError::Truncated {
                needed: usize::try_from(n.saturating_mul(4)).unwrap_or(usize::MAX),
                available: r.remaining(),
            });
        }
        // `n` is now bounded by the frame size, which the receive path
        // capped before allocating the frame itself.
        let n = n as usize;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(r.get_f32()?);
        }
        Ok(Self { rows, cols, data })
    }
}

/// Converts a model's parameter list to wire tensors.
pub fn to_tensors(params: &[Matrix]) -> Vec<Tensor> {
    params.iter().map(Tensor::from).collect()
}

/// Converts wire tensors back to matrices.
pub fn from_tensors(tensors: Vec<Tensor>) -> Vec<Matrix> {
    tensors.into_iter().map(Tensor::into_matrix).collect()
}

/// Control signals that carry no model data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Control {
    /// Server announces a round is starting.
    BeginRound,
    /// Server announces a round is complete.
    EndRound,
    /// Generic acknowledgement.
    Ack,
    /// Abort with a reason.
    Abort(String),
}

/// Every message kind a federated round can put on the wire.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// Client → server: locally-trained (possibly masked) parameters.
    WeightUpdate {
        /// Parameter matrices in aggregation order.
        params: Vec<Tensor>,
    },
    /// Client → server, stats round 1: per-layer activation means and the
    /// local sample count (Algorithm 1 line 4).
    StatsRound1 {
        /// `means[layer][dim]`.
        means: Vec<Vec<f32>>,
        /// Rows of this client's activation matrix (`n_i`).
        n_samples: u64,
    },
    /// Client → server, stats round 2: per-layer central moments about the
    /// global mean (Algorithm 1 lines 12–13).
    StatsRound2 {
        /// `moments[layer][order - 2][dim]`.
        moments: Vec<Vec<Vec<f32>>>,
    },
    /// Server → client: the aggregated global model.
    GlobalModel {
        /// Parameter matrices in aggregation order.
        params: Vec<Tensor>,
    },
    /// Server → client: global statistics (means after round 1; means and
    /// moments after round 2).
    GlobalStats {
        /// `means[layer][dim]`.
        means: Vec<Vec<f32>>,
        /// `moments[layer][order - 2][dim]`; empty after round 1.
        moments: Vec<Vec<Vec<f32>>>,
    },
    /// Round orchestration signal.
    Control(Control),
    /// Client → server: the round's local outcome, so a server that does
    /// not own the clients (multi-process deployment) can reproduce the
    /// in-process driver's loss averaging, pooled evaluation, and early
    /// stopping. Counts are raw integers because pooled accuracy is a
    /// ratio of integer sums — order-free and therefore exact across
    /// transports.
    Metrics {
        /// This client's total training loss for the round.
        train_loss: f32,
        /// Correct validation predictions (0 when not an eval round).
        val_correct: u64,
        /// Validation nodes evaluated (0 when not an eval round).
        val_total: u64,
        /// Correct test predictions (0 when not an eval round).
        test_correct: u64,
        /// Test nodes evaluated (0 when not an eval round).
        test_total: u64,
    },
}

impl Payload {
    /// Wire discriminant.
    fn msg_type(&self) -> u8 {
        match self {
            Payload::WeightUpdate { .. } => 1,
            Payload::StatsRound1 { .. } => 2,
            Payload::StatsRound2 { .. } => 3,
            Payload::GlobalModel { .. } => 4,
            Payload::GlobalStats { .. } => 5,
            Payload::Control(_) => 6,
            Payload::Metrics { .. } => 7,
        }
    }

    /// Human-readable kind (for logs and assertions).
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::WeightUpdate { .. } => "WeightUpdate",
            Payload::StatsRound1 { .. } => "StatsRound1",
            Payload::StatsRound2 { .. } => "StatsRound2",
            Payload::GlobalModel { .. } => "GlobalModel",
            Payload::GlobalStats { .. } => "GlobalStats",
            Payload::Control(_) => "Control",
            Payload::Metrics { .. } => "Metrics",
        }
    }

    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Payload::WeightUpdate { params } | Payload::GlobalModel { params } => {
                w.put_u32(params.len() as u32);
                for t in params {
                    t.encode(w);
                }
            }
            Payload::StatsRound1 { means, n_samples } => {
                encode_layers(w, means);
                w.put_u64(*n_samples);
            }
            Payload::StatsRound2 { moments } => encode_moments(w, moments),
            Payload::GlobalStats { means, moments } => {
                encode_layers(w, means);
                encode_moments(w, moments);
            }
            Payload::Metrics {
                train_loss,
                val_correct,
                val_total,
                test_correct,
                test_total,
            } => {
                w.put_f32(*train_loss);
                w.put_u64(*val_correct);
                w.put_u64(*val_total);
                w.put_u64(*test_correct);
                w.put_u64(*test_total);
            }
            Payload::Control(c) => match c {
                Control::BeginRound => w.put_u8(0),
                Control::EndRound => w.put_u8(1),
                Control::Ack => w.put_u8(2),
                Control::Abort(reason) => {
                    w.put_u8(3);
                    w.put_str(reason);
                }
            },
        }
    }

    fn decode(msg_type: u8, r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match msg_type {
            1 | 4 => {
                let n = r.get_u32()? as usize;
                let mut params = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    params.push(Tensor::decode(r)?);
                }
                Ok(if msg_type == 1 {
                    Payload::WeightUpdate { params }
                } else {
                    Payload::GlobalModel { params }
                })
            }
            2 => {
                let means = decode_layers(r)?;
                let n_samples = r.get_u64()?;
                Ok(Payload::StatsRound1 { means, n_samples })
            }
            3 => Ok(Payload::StatsRound2 {
                moments: decode_moments(r)?,
            }),
            5 => {
                let means = decode_layers(r)?;
                let moments = decode_moments(r)?;
                Ok(Payload::GlobalStats { means, moments })
            }
            6 => {
                let code = r.get_u8()?;
                Ok(Payload::Control(match code {
                    0 => Control::BeginRound,
                    1 => Control::EndRound,
                    2 => Control::Ack,
                    3 => Control::Abort(r.get_str()?),
                    other => {
                        return Err(WireError::Malformed(format!("control code {other}")));
                    }
                }))
            }
            7 => Ok(Payload::Metrics {
                train_loss: r.get_f32()?,
                val_correct: r.get_u64()?,
                val_total: r.get_u64()?,
                test_correct: r.get_u64()?,
                test_total: r.get_u64()?,
            }),
            // LINT: allow(msg-wildcard) the decoder's catch-all is the loud
            // failure the rule wants: an unknown tag becomes a typed
            // `UnknownMsgType` error, never a silently dropped frame.
            other => Err(WireError::UnknownMsgType(other)),
        }
    }
}

fn encode_layers(w: &mut ByteWriter, layers: &[Vec<f32>]) {
    w.put_u32(layers.len() as u32);
    for layer in layers {
        w.put_f32_slice(layer);
    }
}

fn decode_layers(r: &mut ByteReader<'_>) -> Result<Vec<Vec<f32>>, WireError> {
    let n = r.get_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(r.get_f32_vec()?);
    }
    Ok(out)
}

fn encode_moments(w: &mut ByteWriter, moments: &[Vec<Vec<f32>>]) {
    w.put_u32(moments.len() as u32);
    for layer in moments {
        encode_layers(w, layer);
    }
}

fn decode_moments(r: &mut ByteReader<'_>) -> Result<Vec<Vec<Vec<f32>>>, WireError> {
    let n = r.get_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(decode_layers(r)?);
    }
    Ok(out)
}

/// One addressed, round-stamped message.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Communication round this message belongs to.
    pub round: u64,
    /// Originator: a client index, or [`SERVER_SENDER`].
    pub sender: u32,
    /// The message body.
    pub payload: Payload,
}

impl Envelope {
    /// Serialises to a complete checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = ByteWriter::new();
        self.payload.encode(&mut body);
        let body = body.into_bytes();

        let mut w = ByteWriter::with_capacity(HEADER_BYTES + body.len() + TRAILER_BYTES);
        w.put_u32(MAGIC);
        w.put_u8(VERSION);
        w.put_u8(self.payload.msg_type());
        w.put_u32(self.sender);
        w.put_u64(self.round);
        w.put_u32(body.len() as u32);
        w.put_raw(&body);
        let crc = crc32(w.as_slice());
        w.put_u32(crc);
        w.into_bytes()
    }

    /// Parses a complete frame, verifying magic, version, declared payload
    /// length, and checksum; rejects trailing bytes.
    pub fn decode(frame: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(frame);
        let magic = r.get_u32()?;
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = r.get_u8()?;
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let msg_type = r.get_u8()?;
        let sender = r.get_u32()?;
        let round = r.get_u64()?;
        let payload_len = r.get_u32()? as usize;
        if r.remaining() != payload_len + TRAILER_BYTES {
            return Err(WireError::Malformed(format!(
                "declared payload length {payload_len} disagrees with frame size {}",
                frame.len()
            )));
        }
        // Verify the checksum before trusting any payload structure.
        let checksummed = frame.len() - TRAILER_BYTES;
        let stored = match <[u8; TRAILER_BYTES]>::try_from(&frame[checksummed..]) {
            Ok(bytes) => u32::from_le_bytes(bytes),
            // Unreachable given the length check above, but a typed error
            // keeps the decode path panic-free on arbitrary input.
            Err(_) => {
                return Err(WireError::Truncated {
                    needed: TRAILER_BYTES,
                    available: frame.len() - checksummed,
                })
            }
        };
        let computed = crc32(&frame[..checksummed]);
        if stored != computed {
            return Err(WireError::BadChecksum { stored, computed });
        }
        let payload = Payload::decode(msg_type, &mut r)?;
        if r.remaining() != TRAILER_BYTES {
            return Err(WireError::Malformed(format!(
                "{} payload bytes left undecoded",
                r.remaining() - TRAILER_BYTES
            )));
        }
        Ok(Self {
            round,
            sender,
            payload,
        })
    }

    /// Encoded size in bytes without materialising the frame twice.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_envelopes() -> Vec<Envelope> {
        vec![
            Envelope {
                round: 3,
                sender: 1,
                payload: Payload::WeightUpdate {
                    params: vec![
                        Tensor {
                            rows: 2,
                            cols: 3,
                            data: vec![1.0, -2.5, 0.0, 1e-7, 3.5, -0.125],
                        },
                        Tensor {
                            rows: 1,
                            cols: 1,
                            data: vec![42.0],
                        },
                    ],
                },
            },
            Envelope {
                round: 0,
                sender: 0,
                payload: Payload::StatsRound1 {
                    means: vec![vec![0.5, -0.5], vec![1.5]],
                    n_samples: 37,
                },
            },
            Envelope {
                round: 9,
                sender: 2,
                payload: Payload::StatsRound2 {
                    moments: vec![vec![vec![0.1, 0.2], vec![0.3, 0.4]], vec![vec![-1.0]]],
                },
            },
            Envelope {
                round: 5,
                sender: SERVER_SENDER,
                payload: Payload::GlobalModel {
                    params: vec![Tensor {
                        rows: 0,
                        cols: 4,
                        data: vec![],
                    }],
                },
            },
            Envelope {
                round: 5,
                sender: SERVER_SENDER,
                payload: Payload::GlobalStats {
                    means: vec![vec![2.0]],
                    moments: vec![vec![vec![0.25, 0.75]]],
                },
            },
            Envelope {
                round: 1,
                sender: 0,
                payload: Payload::Control(Control::BeginRound),
            },
            Envelope {
                round: 7,
                sender: 3,
                payload: Payload::Metrics {
                    train_loss: 0.8125,
                    val_correct: 31,
                    val_total: 40,
                    test_correct: 77,
                    test_total: 100,
                },
            },
            Envelope {
                round: 1,
                sender: 4,
                payload: Payload::Control(Control::Abort("client lost".into())),
            },
        ]
    }

    #[test]
    fn every_payload_kind_roundtrips() {
        for env in sample_envelopes() {
            let bytes = env.encode();
            let back = Envelope::decode(&bytes)
                .unwrap_or_else(|e| panic!("{} failed to decode: {e:?}", env.payload.kind()));
            assert_eq!(back, env);
        }
    }

    #[test]
    fn floats_survive_bit_exactly() {
        let weird = vec![
            f32::MIN_POSITIVE,
            -0.0,
            1.0e38,
            f32::EPSILON,
            -std::f32::consts::PI,
        ];
        let env = Envelope {
            round: 0,
            sender: 0,
            payload: Payload::WeightUpdate {
                params: vec![Tensor {
                    rows: 1,
                    cols: 5,
                    data: weird.clone(),
                }],
            },
        };
        let back = Envelope::decode(&env.encode()).unwrap();
        match back.payload {
            Payload::WeightUpdate { params } => {
                for (a, b) in params[0].data.iter().zip(&weird) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("wrong payload {}", other.kind()),
        }
    }

    #[test]
    fn bad_magic_version_and_checksum_rejected() {
        let env = sample_envelopes().remove(0);
        let good = env.encode();

        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            Envelope::decode(&bad),
            Err(WireError::BadMagic(_))
        ));

        let mut bad = good.clone();
        bad[4] = VERSION + 1;
        assert!(matches!(
            Envelope::decode(&bad),
            Err(WireError::BadVersion(_))
        ));

        let mut bad = good.clone();
        let mid = good.len() / 2;
        bad[mid] ^= 0x01;
        // A mid-frame flip lands in header or payload; either way the frame
        // must not decode to a different envelope.
        match Envelope::decode(&bad) {
            Err(_) => {}
            Ok(e) => panic!("corrupted frame decoded as {:?}", e.payload.kind()),
        }
    }

    #[test]
    fn truncated_and_padded_frames_rejected() {
        let good = sample_envelopes().remove(0).encode();
        assert!(Envelope::decode(&good[..good.len() - 1]).is_err());
        let mut padded = good.clone();
        padded.push(0);
        assert!(Envelope::decode(&padded).is_err());
        assert!(Envelope::decode(&[]).is_err());
    }

    #[test]
    fn adversarial_length_prefix_is_rejected_before_allocation() {
        // A hostile peer announces a 4 GiB frame: the cap rejects the
        // prefix itself, so no buffer of that size is ever allocated.
        assert_eq!(
            check_frame_len(u32::MAX, DEFAULT_MAX_FRAME_BYTES),
            Err(WireError::FrameTooLarge {
                declared: u32::MAX as u64,
                max: DEFAULT_MAX_FRAME_BYTES as u64,
            })
        );
        // One byte over a custom cap is over.
        assert!(matches!(
            check_frame_len(1025, 1024),
            Err(WireError::FrameTooLarge {
                declared: 1025,
                max: 1024
            })
        ));
        // Shorter than any syntactically possible frame: also rejected.
        assert!(matches!(
            check_frame_len(3, DEFAULT_MAX_FRAME_BYTES),
            Err(WireError::Truncated { .. })
        ));
        // Every real frame passes under the default cap.
        for env in sample_envelopes() {
            let n = env.encode().len() as u32;
            assert_eq!(check_frame_len(n, DEFAULT_MAX_FRAME_BYTES), Ok(n as usize));
        }
    }

    #[test]
    fn overflowing_tensor_dims_are_rejected_not_panicked_on() {
        // A hostile but checksummed frame: one WeightUpdate tensor
        // claiming 2³¹ × 2³¹ elements and no data. `rows * cols * 4` is
        // exactly 2⁶⁴, so wrapping arithmetic would size-check it as 0
        // bytes and then panic allocating 2⁶² elements; the decoder must
        // return a typed error instead.
        let mut body = ByteWriter::new();
        body.put_u32(1); // one tensor
        body.put_u32(1 << 31); // rows
        body.put_u32(1 << 31); // cols
        let body = body.into_bytes();

        let mut w = ByteWriter::new();
        w.put_u32(MAGIC);
        w.put_u8(VERSION);
        w.put_u8(1); // WeightUpdate
        w.put_u32(0); // sender
        w.put_u64(0); // round
        w.put_u32(body.len() as u32);
        w.put_raw(&body);
        let crc = crc32(w.as_slice());
        w.put_u32(crc);
        let frame = w.into_bytes();

        assert!(matches!(
            Envelope::decode(&frame),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn tensor_matrix_conversion_roundtrips() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 7 + c) as f32 * 0.5);
        let t = Tensor::from(&m);
        assert_eq!(t.into_matrix(), m);
    }

    #[test]
    fn encoding_is_byte_identical_across_calls() {
        // Determinism regression guard: the wire format carries no
        // unordered containers, so encoding the same envelope twice — or
        // re-encoding after a decode — must reproduce the exact bytes.
        for env in sample_envelopes() {
            let a = env.encode();
            assert_eq!(env.encode(), a);
            let re = Envelope::decode(&a).expect("decode").encode();
            assert_eq!(
                re,
                a,
                "decode → re-encode drifted for {}",
                env.payload.kind()
            );
        }
    }

    #[test]
    fn encoded_len_matches_closed_form() {
        // A WeightUpdate's size must be exactly predictable from its shape:
        // header + n_params prefix + per-tensor (rows + cols + data) + crc.
        let env = Envelope {
            round: 2,
            sender: 1,
            payload: Payload::WeightUpdate {
                params: vec![Tensor {
                    rows: 4,
                    cols: 6,
                    data: vec![0.0; 24],
                }],
            },
        };
        let expected = HEADER_BYTES + 4 + (4 + 4 + 24 * 4) + TRAILER_BYTES;
        assert_eq!(env.encode().len(), expected);
        assert_eq!(env.encoded_len(), expected);
    }
}
