//! `fedomd-transport`: the wire protocol and channel layer that federated
//! rounds run over.
//!
//! Three layers, bottom up:
//!
//! * [`wire`] — little-endian primitive codec ([`wire::ByteWriter`],
//!   [`wire::ByteReader`]) and the CRC-32 checksum.
//! * [`frame`] — the message layer: [`frame::Envelope`] (round + sender +
//!   [`frame::Payload`]) and its checksummed frame encoding. Payloads
//!   cover the whole FedOMD round vocabulary: `WeightUpdate`,
//!   `StatsRound1`, `StatsRound2`, `GlobalModel`, `GlobalStats`, and
//!   `Control`.
//! * [`channel`] — the [`Channel`] trait moving envelopes between server
//!   and clients, with two implementations: [`InProcChannel`] (crossbeam
//!   queues, fault-free, bit-identical to direct calls) and
//!   [`SimNetChannel`] (virtual-time fault simulation: drops, latency,
//!   jitter, stragglers, retry with exponential backoff, and a per-round
//!   deadline that degrades rounds to partial aggregation).

#![forbid(unsafe_code)]

pub mod channel;
pub mod frame;
pub mod inproc;
pub mod simnet;
pub mod wire;

pub use channel::{admit_by_deadline, Channel, ChannelState, NetStats};
pub use frame::{
    check_frame_len, from_tensors, to_tensors, Control, Envelope, Payload, Tensor,
    DEFAULT_MAX_FRAME_BYTES, SERVER_SENDER,
};
pub use inproc::InProcChannel;
pub use simnet::{FaultConfig, SimNetChannel};
pub use wire::WireError;
