//! Property tests for the frame codec: every well-formed envelope
//! roundtrips bit-exactly, and no corrupted frame ever decodes — the
//! CRC-32 (which detects all single-byte errors) makes the second
//! property exact rather than probabilistic.

use fedomd_transport::frame::{Control, Envelope, Payload, Tensor};
use proptest::collection::vec;
use proptest::prelude::*;

/// Deterministically builds one of the six payload kinds from generated raw
/// material (`data` is chunked into layers for the stats shapes).
fn build_payload(kind: u8, data: Vec<f32>, layers: usize, n: u64, text: String) -> Payload {
    let chunk = (data.len() / layers.max(1)).max(1);
    let split: Vec<Vec<f32>> = data.chunks(chunk).map(|c| c.to_vec()).collect();
    match kind {
        0 => Payload::WeightUpdate {
            params: vec![Tensor {
                rows: data.len() as u32,
                cols: 1,
                data,
            }],
        },
        1 => Payload::StatsRound1 {
            means: split,
            n_samples: n,
        },
        2 => Payload::StatsRound2 {
            moments: vec![split],
        },
        3 => Payload::GlobalModel {
            params: vec![Tensor {
                rows: 1,
                cols: data.len() as u32,
                data,
            }],
        },
        4 => Payload::GlobalStats {
            means: split.clone(),
            moments: vec![split],
        },
        _ => Payload::Control(if n.is_multiple_of(2) {
            Control::Ack
        } else {
            Control::Abort(text)
        }),
    }
}

proptest! {
    #[test]
    fn encode_decode_roundtrips_exactly(
        kind in 0u8..6,
        round in 0u64..=u64::MAX,
        sender in 0u32..=u32::MAX,
        data in vec(-1.0e6f32..1.0e6, 0..32),
        layers in 1usize..4,
        n in 0u64..1_000_000,
        text_bytes in vec(32u8..127, 0..12),
    ) {
        let text = String::from_utf8(text_bytes).expect("printable ascii");
        let env = Envelope { round, sender, payload: build_payload(kind, data, layers, n, text) };
        let bytes = env.encode();
        let back = Envelope::decode(&bytes);
        prop_assert!(back.is_ok(), "decode failed: {:?}", back.err());
        prop_assert_eq!(back.unwrap(), env);
    }

    #[test]
    fn single_byte_corruption_is_always_rejected(
        kind in 0u8..6,
        data in vec(-100.0f32..100.0, 1..24),
        layers in 1usize..3,
        pos in 0usize..=usize::MAX,
        mask in 1u8..=255,
    ) {
        let env = Envelope {
            round: 11,
            sender: 3,
            payload: build_payload(kind, data, layers, 9, "x".into()),
        };
        let mut bytes = env.encode();
        let idx = pos % bytes.len();
        bytes[idx] ^= mask;
        // A flipped byte may land in magic, version, type, ids, lengths,
        // payload, or the checksum itself; in every case the frame must be
        // rejected — never silently mis-decoded.
        let got = Envelope::decode(&bytes);
        prop_assert!(
            got.is_err(),
            "byte {} of {} flipped by {:#04x} still decoded as {:?}",
            idx, bytes.len(), mask, got.unwrap().payload.kind()
        );
    }

    #[test]
    fn truncated_frames_are_always_rejected(
        data in vec(-10.0f32..10.0, 1..16),
        cut in 0usize..=usize::MAX,
    ) {
        let env = Envelope {
            round: 2,
            sender: 1,
            payload: Payload::WeightUpdate {
                params: vec![Tensor { rows: data.len() as u32, cols: 1, data }],
            },
        };
        let bytes = env.encode();
        let keep = cut % bytes.len(); // strictly shorter than the frame
        prop_assert!(Envelope::decode(&bytes[..keep]).is_err());
    }
}
