//! Compressed-sparse-row matrices and the parallel SpMM kernel.

use fedomd_tensor::Matrix;
use rayon::prelude::*;

/// Ceiling on stored entries per parallel SpMM task: large enough that
/// task overhead amortises over thousands of multiply-adds. The actual
/// target also divides the matrix's nnz across the rayon pool (with 4×
/// oversubscription for work stealing) so small graphs still fan out
/// instead of collapsing into one serial block; see
/// [`Csr::spmm`]. Scheduling never affects results — every output row is
/// accumulated independently in its own task.
const SPMM_TARGET_NNZ: usize = 4096;
/// Floor on stored entries per parallel SpMM task, so the thread-scaled
/// target can't shatter tiny graphs into tasks dominated by overhead.
const SPMM_MIN_TARGET_NNZ: usize = 256;
/// Column-chunk width of the register-blocked row kernel: 16 f32 lanes =
/// two AVX2 vectors of accumulators living in registers across all of a
/// row's stored entries, instead of a load/store of the output row per
/// entry.
const SPMM_CHUNK: usize = 16;

/// Register-blocked kernel over the row range starting at `r0` covering
/// `out` (`out.len() / n` rows, `out` fully overwritten). Columns are
/// processed in [`SPMM_CHUNK`]-wide chunks; within a chunk the row's
/// stored entries run in CSR order into a stack accumulator, so every
/// output element sees exactly the entry-order accumulation (from `0.0`)
/// of [`Csr::spmm_ref`] — bit-identical by construction, pinned by
/// `prop_spmm_bitwise_matches_ref`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn spmm_rows_body(
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    x_data: &[f32],
    n: usize,
    r0: usize,
    out: &mut [f32],
) {
    for (i, out_row) in out.chunks_mut(n).enumerate() {
        let r = r0 + i;
        let (lo, hi) = (indptr[r], indptr[r + 1]);
        let idx = &indices[lo..hi];
        let vals = &values[lo..hi];
        let mut j0 = 0;
        while j0 + SPMM_CHUNK <= n {
            let mut acc = [0.0f32; SPMM_CHUNK];
            for (&c, &v) in idx.iter().zip(vals) {
                let x_row = &x_data[c as usize * n + j0..c as usize * n + j0 + SPMM_CHUNK];
                for (a, &xv) in acc.iter_mut().zip(x_row) {
                    *a += v * xv;
                }
            }
            out_row[j0..j0 + SPMM_CHUNK].copy_from_slice(&acc);
            j0 += SPMM_CHUNK;
        }
        if j0 < n {
            // Ragged tail: same kernel on the trailing `w < SPMM_CHUNK`
            // columns (unused accumulator lanes are never stored).
            let w = n - j0;
            let mut acc = [0.0f32; SPMM_CHUNK];
            for (&c, &v) in idx.iter().zip(vals) {
                let x_row = &x_data[c as usize * n + j0..c as usize * n + j0 + w];
                for (a, &xv) in acc[..w].iter_mut().zip(x_row) {
                    *a += v * xv;
                }
            }
            out_row[j0..].copy_from_slice(&acc[..w]);
        }
    }
}

/// Baseline-ISA instantiation of the row kernel.
#[allow(clippy::too_many_arguments)]
fn spmm_rows_generic(
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    x_data: &[f32],
    n: usize,
    r0: usize,
    out: &mut [f32],
) {
    spmm_rows_body(indptr, indices, values, x_data, n, r0, out);
}

/// AVX2 instantiation: identical Rust code, wider auto-vectorisation.
/// Plain lane-wise IEEE mul/add without contraction keeps it bit-identical
/// to [`spmm_rows_generic`].
///
/// # Safety
/// Callers must have verified AVX2 support at runtime.
// SAFETY: `unsafe` solely because of `#[target_feature(enable = "avx2")]`
// — executing AVX2 instructions on a CPU without them is UB. The only
// call site (`run_spmm_rows`) is gated on `is_x86_feature_detected!`
// evaluated in `Csr::spmm_body` / `Csr::spmm_blocked`. All memory access
// goes through the shared safe `spmm_rows_body`: CSR arrays and the dense
// operand are plain slices with every index bounds-checked — no raw
// pointers, no alignment assumptions.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn spmm_rows_avx2(
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    x_data: &[f32],
    n: usize,
    r0: usize,
    out: &mut [f32],
) {
    spmm_rows_body(indptr, indices, values, x_data, n, r0, out);
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn run_spmm_rows(
    avx2: bool,
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    x_data: &[f32],
    n: usize,
    r0: usize,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if avx2 {
        // SAFETY: `avx2` is only true when `is_x86_feature_detected!`
        // confirmed support at the kernel entry point.
        unsafe { spmm_rows_avx2(indptr, indices, values, x_data, n, r0, out) };
        return;
    }
    let _ = avx2;
    spmm_rows_generic(indptr, indices, values, x_data, n, r0, out);
}

#[inline]
fn detect_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// A sparse `f32` matrix in CSR form.
///
/// Invariants (checked by [`Csr::validate`], maintained by all
/// constructors): `indptr.len() == rows + 1`, `indptr` is non-decreasing,
/// `indptr[rows] == indices.len() == values.len()`, and within each row the
/// column indices are strictly increasing (no duplicates).
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// Builds a CSR matrix from COO triplets `(row, col, value)`.
    ///
    /// Triplets may arrive in any order; duplicates are summed. Entries that
    /// sum to exactly zero are kept (callers that care can [`Csr::prune`]).
    ///
    /// # Panics
    /// Panics when an index is out of bounds.
    pub fn from_coo(rows: usize, cols: usize, mut entries: Vec<(usize, usize, f32)>) -> Self {
        for &(r, c, _) in &entries {
            assert!(
                r < rows && c < cols,
                "from_coo: entry ({r},{c}) out of bounds for {rows}x{cols}"
            );
        }
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut indptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(entries.len());
        let mut values: Vec<f32> = Vec::with_capacity(entries.len());
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in entries {
            if last == Some((r, c)) {
                // LINT: allow(panic) `last == Some` only after a prior
                // iteration pushed onto `values`, so `last_mut` is `Some`.
                *values.last_mut().expect("values nonempty when last is set") += v;
            } else {
                indptr[r + 1] += 1;
                indices.push(c as u32);
                values.push(v);
                last = Some((r, c));
            }
        }
        for r in 0..rows {
            indptr[r + 1] += indptr[r];
        }
        let out = Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        };
        debug_assert!(out.validate().is_ok());
        out
    }

    /// An all-zero sparse matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The sparse identity.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `(column indices, values)` of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Checks the CSR invariants, returning a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.indptr.len() != self.rows + 1 {
            return Err(format!(
                "indptr length {} != rows+1 {}",
                self.indptr.len(),
                self.rows + 1
            ));
        }
        if self.indptr[self.rows] != self.indices.len() || self.indices.len() != self.values.len() {
            return Err("indptr tail / indices / values lengths disagree".into());
        }
        for r in 0..self.rows {
            if self.indptr[r] > self.indptr[r + 1] {
                return Err(format!("indptr decreases at row {r}"));
            }
            let (idx, _) = self.row(r);
            for w in idx.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row {r}: indices not strictly increasing"));
                }
            }
            if let Some(&last) = idx.last() {
                if last as usize >= self.cols {
                    return Err(format!("row {r}: column {last} out of bounds"));
                }
            }
        }
        Ok(())
    }

    /// Sparse-dense product `C = S · X` (the graph-propagation kernel).
    ///
    /// Parallelised over nnz-balanced row blocks: the `indptr` array *is*
    /// the prefix sum of per-row nnz, so [`Csr::balanced_row_blocks`] cuts
    /// the rows into blocks of roughly equal stored-entry counts (scaled
    /// to the rayon pool, bounded by [`SPMM_MIN_TARGET_NNZ`] and
    /// [`SPMM_TARGET_NNZ`]) by binary-searching it. One task per block
    /// fixes both the task-per-row overhead on small rows and the load
    /// imbalance on power-law degree graphs; a one-thread pool takes the
    /// plain row sweep instead, since partitioning cannot pay off there.
    /// Per-row accumulation order is unchanged on every path, so results
    /// are bit-identical to [`Csr::spmm_ref`].
    ///
    /// # Panics
    /// Panics when `self.cols() != x.rows()`.
    pub fn spmm(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, x.cols());
        self.spmm_body(x, &mut out);
        out
    }

    /// [`Csr::spmm`] into a caller-provided output (overwritten, any prior
    /// contents ignored). Lets the autograd workspace recycle buffers.
    ///
    /// # Panics
    /// Panics when the inner dimensions or the output shape disagree.
    pub fn spmm_into(&self, x: &Matrix, out: &mut Matrix) {
        out.as_mut_slice().fill(0.0);
        self.spmm_body(x, out);
    }

    /// Accumulating kernel shared by [`Csr::spmm`] / [`Csr::spmm_into`];
    /// `out` must be zeroed on entry.
    fn spmm_body(&self, x: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            x.rows(),
            "spmm: inner dimensions disagree ({}x{} · {}x{})",
            self.rows,
            self.cols,
            x.rows(),
            x.cols()
        );
        let n = x.cols();
        assert_eq!(
            out.shape(),
            (self.rows, n),
            "spmm_into: output shape mismatch"
        );
        if self.rows == 0 || n == 0 {
            // Explicit `n == 0` handling: the result is the (empty)
            // all-zero matrix. The previous kernel's `n.max(1)` chunking
            // degenerated into one bogus task per output element here.
            return;
        }
        // Aim for ~4 blocks per thread (work-stealing slack) but keep each
        // block big enough to amortise its task, and never bigger than the
        // ceiling that bounds load imbalance on power-law graphs. On a
        // one-thread pool (the vendored sequential rayon shim) the plain
        // row sweep is optimal and partitioning is pure overhead, so skip
        // it — likewise when the whole matrix fits one block anyway.
        let threads = rayon::current_num_threads();
        let per_thread = self.nnz() / (4 * threads).max(1);
        let target = per_thread.clamp(SPMM_MIN_TARGET_NNZ, SPMM_TARGET_NNZ);
        if threads <= 1 || self.nnz() <= target {
            run_spmm_rows(
                detect_avx2(),
                &self.indptr,
                &self.indices,
                &self.values,
                x.as_slice(),
                n,
                0,
                out.as_mut_slice(),
            );
        } else {
            self.spmm_blocked(x, out, target);
        }
    }

    /// The nnz-balanced blocked kernel behind [`Csr::spmm`]: one rayon
    /// task per ≈`target`-entry row block, each running the
    /// register-blocked row kernel. Per-row accumulation is identical to
    /// the serial sweep — partitioning only changes which task computes a
    /// row, never the arithmetic inside it.
    fn spmm_blocked(&self, x: &Matrix, out: &mut Matrix, target: usize) {
        let n = x.cols();
        let x_data = x.as_slice();
        let blocks = self.balanced_row_blocks(target);
        let avx2 = detect_avx2();

        // Carve the output into one contiguous mutable slice per block.
        let mut tasks = Vec::with_capacity(blocks.len());
        let mut rest = out.as_mut_slice();
        for &(r0, r1) in &blocks {
            let (head, tail) = rest.split_at_mut((r1 - r0) * n);
            tasks.push((r0, head));
            rest = tail;
        }
        tasks.into_par_iter().for_each(|(r0, chunk)| {
            run_spmm_rows(
                avx2,
                &self.indptr,
                &self.indices,
                &self.values,
                x_data,
                n,
                r0,
                chunk,
            );
        });
    }

    /// Serial reference SpMM (the pre-PR4 per-row kernel, minus the
    /// per-row rayon task). Oracle for the bit-identity proptests.
    pub fn spmm_ref(&self, x: &Matrix) -> Matrix {
        assert_eq!(self.cols, x.rows(), "spmm_ref: inner dimensions disagree");
        let n = x.cols();
        let x_data = x.as_slice();
        let mut out = Matrix::zeros(self.rows, n);
        for (r, out_row) in out.as_mut_slice().chunks_mut(n.max(1)).enumerate() {
            if n == 0 {
                break;
            }
            let (idx, vals) = self.row(r);
            for (&c, &v) in idx.iter().zip(vals) {
                let x_row = &x_data[c as usize * n..(c as usize + 1) * n];
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += v * xv;
                }
            }
        }
        out
    }

    /// Partitions `[0, rows)` into contiguous blocks of ≈`target` stored
    /// entries (each at least one row): each block is the shortest row
    /// range from its start whose nnz reaches `target`, found by binary
    /// search over the `indptr` prefix sums. Rows heavier than `target`
    /// become single-row blocks; trailing light rows pool into one block.
    fn balanced_row_blocks(&self, target: usize) -> Vec<(usize, usize)> {
        let mut blocks = Vec::new();
        let mut r0 = 0;
        while r0 < self.rows {
            let goal = self.indptr[r0] + target;
            let boundaries = &self.indptr[r0 + 1..self.rows + 1];
            let i = boundaries.partition_point(|&v| v < goal);
            let r1 = (r0 + 1 + i).min(self.rows);
            blocks.push((r0, r1));
            r0 = r1;
        }
        blocks
    }

    /// Sparse-vector product `y = S · x`.
    pub fn spmv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(self.cols, x.len(), "spmv: dimension mismatch");
        (0..self.rows)
            .map(|r| {
                let (idx, vals) = self.row(r);
                idx.iter().zip(vals).map(|(&c, &v)| v * x[c as usize]).sum()
            })
            .collect()
    }

    /// The transposed matrix (counting sort over columns).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for c in 0..self.cols {
            counts[c + 1] += counts[c];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.rows {
            let (idx, vals) = self.row(r);
            for (&c, &v) in idx.iter().zip(vals) {
                let pos = cursor[c as usize];
                indices[pos] = r as u32;
                values[pos] = v;
                cursor[c as usize] += 1;
            }
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// True when the matrix equals its transpose (within `tol`).
    pub fn is_symmetric(&self, tol: f32) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let t = self.transpose();
        if t.indptr != self.indptr || t.indices != self.indices {
            return false;
        }
        self.values
            .iter()
            .zip(&t.values)
            .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Removes explicitly stored zeros.
    pub fn prune(&self) -> Csr {
        let mut entries = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            let (idx, vals) = self.row(r);
            for (&c, &v) in idx.iter().zip(vals) {
                if v != 0.0 {
                    entries.push((r, c as usize, v));
                }
            }
        }
        Csr::from_coo(self.rows, self.cols, entries)
    }

    /// Densifies (tests / small matrices only).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (idx, vals) = self.row(r);
            for (&c, &v) in idx.iter().zip(vals) {
                m[(r, c as usize)] += v;
            }
        }
        m
    }

    /// Sum of absolute values in each row (used for spectral bounds).
    pub fn row_abs_sums(&self) -> Vec<f32> {
        (0..self.rows)
            .map(|r| self.row(r).1.iter().map(|v| v.abs()).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small() -> Csr {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [3, 4, 0]]
        Csr::from_coo(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)],
        )
    }

    #[test]
    fn from_coo_builds_valid_csr() {
        let s = small();
        assert_eq!(s.nnz(), 4);
        s.validate().expect("valid");
        assert_eq!(s.row(0), (&[0u32, 2][..], &[1.0f32, 2.0][..]));
        assert_eq!(s.row_nnz(1), 0);
    }

    #[test]
    fn from_coo_merges_duplicates() {
        let s = Csr::from_coo(2, 2, vec![(0, 1, 1.0), (0, 1, 2.5), (1, 0, -1.0)]);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.row(0), (&[1u32][..], &[3.5f32][..]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_coo_rejects_out_of_bounds() {
        let _ = Csr::from_coo(2, 2, vec![(0, 5, 1.0)]);
    }

    #[test]
    fn spmm_matches_dense_product() {
        let s = small();
        let x = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let got = s.spmm(&x);
        let expected = fedomd_tensor::gemm::matmul_naive(&s.to_dense(), &x);
        got.assert_close(&expected, 1e-5);
    }

    #[test]
    fn identity_spmm_is_noop() {
        let x = Matrix::from_fn(5, 3, |r, c| (r + c) as f32);
        Csr::identity(5).spmm(&x).assert_close(&x, 1e-6);
    }

    #[test]
    fn spmv_matches_spmm_single_column() {
        let s = small();
        let x = vec![1.0, -1.0, 2.0];
        let y = s.spmv(&x);
        let xm = Matrix::from_vec(3, 1, x);
        let ym = s.spmm(&xm);
        for r in 0..3 {
            assert!((y[r] - ym[(r, 0)]).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let s = small();
        let tt = s.transpose().transpose();
        assert_eq!(s, tt);
        s.transpose()
            .to_dense()
            .assert_close(&s.to_dense().transpose(), 1e-6);
    }

    #[test]
    fn symmetry_detection() {
        let sym = Csr::from_coo(2, 2, vec![(0, 1, 2.0), (1, 0, 2.0), (0, 0, 1.0)]);
        assert!(sym.is_symmetric(1e-6));
        assert!(!small().is_symmetric(1e-6));
        assert!(!Csr::zeros(2, 3).is_symmetric(1e-6));
    }

    #[test]
    fn prune_drops_stored_zeros() {
        let s = Csr::from_coo(2, 2, vec![(0, 0, 1.0), (0, 1, -1.0), (0, 1, 1.0)]);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.prune().nnz(), 1);
    }

    #[test]
    fn empty_matrix_operations() {
        let s = Csr::zeros(3, 4);
        let x = Matrix::zeros(4, 2);
        assert_eq!(s.spmm(&x), Matrix::zeros(3, 2));
        assert_eq!(s.transpose().rows(), 4);
        s.validate().expect("valid empty");
    }

    #[test]
    fn spmm_with_zero_columns_yields_empty_result() {
        // Regression for the `n == 0` degenerate case of the old
        // `n.max(1)` chunking: must return a well-formed `rows × 0`
        // matrix, not panic or mis-chunk.
        let s = small();
        let x = Matrix::zeros(3, 0);
        let out = s.spmm(&x);
        assert_eq!(out.shape(), (3, 0));
        assert_eq!(s.spmm_ref(&x).shape(), (3, 0));
        let mut pre = Matrix::zeros(3, 0);
        s.spmm_into(&x, &mut pre);
        assert_eq!(pre.shape(), (3, 0));
    }

    #[test]
    fn spmm_into_overwrites_stale_contents() {
        let s = small();
        let x = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 - 5.0);
        let mut out = Matrix::from_fn(3, 4, |_, _| f32::NAN);
        s.spmm_into(&x, &mut out);
        let want = s.spmm_ref(&x);
        for (a, b) in out.as_slice().iter().zip(want.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn balanced_blocks_partition_and_balance() {
        // Power-law-ish degrees: one hub row, many light rows.
        let mut entries = Vec::new();
        for c in 0..200 {
            entries.push((0, c, 1.0)); // hub
        }
        for r in 1..50 {
            entries.push((r, r % 7, 1.0));
        }
        let s = Csr::from_coo(50, 200, entries);
        let target = 16;
        let blocks = s.balanced_row_blocks(target);
        // Contiguous cover of [0, rows).
        assert_eq!(blocks.first().expect("nonempty").0, 0);
        assert_eq!(blocks.last().expect("nonempty").1, 50);
        for w in blocks.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        for &(r0, r1) in &blocks {
            assert!(r1 > r0);
            let nnz: usize = (r0..r1).map(|r| s.row_nnz(r)).sum();
            // Every block is the *shortest* prefix reaching the target:
            // dropping its last row must fall below target (or the block
            // is the tail).
            if r1 < 50 {
                assert!(nnz >= target);
            }
            if r1 - r0 > 1 {
                let without_last: usize = (r0..r1 - 1).map(|r| s.row_nnz(r)).sum();
                assert!(without_last < target);
            }
        }
        // The hub row starts a block and is heavier than the target, so
        // it sits alone instead of dragging light rows into its task.
        assert_eq!(blocks[0], (0, 1));
    }

    #[test]
    fn balanced_blocks_of_all_empty_rows_is_single_block() {
        let s = Csr::zeros(17, 5);
        assert_eq!(s.balanced_row_blocks(64), vec![(0, 17)]);
    }

    proptest! {
        #[test]
        fn prop_spmm_matches_dense(
            rows in 1usize..12, cols in 1usize..12, n in 1usize..6,
            entries in proptest::collection::vec((0usize..12, 0usize..12, -2.0f32..2.0), 0..40)
        ) {
            let entries: Vec<_> = entries
                .into_iter()
                .filter(|&(r, c, _)| r < rows && c < cols)
                .collect();
            let s = Csr::from_coo(rows, cols, entries);
            prop_assert!(s.validate().is_ok());
            let x = Matrix::from_fn(cols, n, |r, c| ((r * 3 + c * 7) % 5) as f32 - 2.0);
            let got = s.spmm(&x);
            let want = fedomd_tensor::gemm::matmul_naive(&s.to_dense(), &x);
            got.assert_close(&want, 1e-3);
        }

        #[test]
        fn prop_transpose_involution(
            entries in proptest::collection::vec((0usize..10, 0usize..10, -1.0f32..1.0), 0..30)
        ) {
            let s = Csr::from_coo(10, 10, entries);
            prop_assert_eq!(s.transpose().transpose(), s);
        }

        /// The tentpole invariant: nnz-balanced, register-blocked SpMM is
        /// bit-identical to the retained per-row reference, including
        /// empty rows, all-zero stored values, and non-finite features.
        /// `n` up to 36 crosses the 16-column register chunk (full chunks,
        /// a ragged tail, and `n < SPMM_CHUNK` entirely-ragged shapes).
        #[test]
        fn prop_spmm_bitwise_matches_ref(
            rows in 1usize..60, cols in 1usize..20, n in 0usize..36,
            entries in proptest::collection::vec((0usize..60, 0usize..20, -2.0f32..2.0), 0..200),
            nonfinite in 0usize..3, target in 1usize..32,
        ) {
            let entries: Vec<_> = entries
                .into_iter()
                .filter(|&(r, c, _)| r < rows && c < cols)
                .collect();
            let s = Csr::from_coo(rows, cols, entries);
            let mut x = Matrix::from_fn(cols, n, |r, c| ((r * 3 + c * 7) % 5) as f32 - 2.0);
            let total = cols * n;
            for i in 0..nonfinite.min(total) {
                let idx = (i * 13 + 5) % total;
                x.as_mut_slice()[idx] = if i % 2 == 0 { f32::NAN } else { f32::INFINITY };
            }
            let got = s.spmm(&x);
            let want = s.spmm_ref(&x);
            prop_assert_eq!(got.shape(), want.shape());
            for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            // The blocked kernel (which a one-thread pool skips) stays
            // bit-identical at every block granularity.
            if n > 0 {
                let mut blocked = Matrix::zeros(rows, n);
                s.spmm_blocked(&x, &mut blocked, target);
                for (a, b) in blocked.as_slice().iter().zip(want.as_slice()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            // The partition is a contiguous cover regardless of target.
            let blocks = s.balanced_row_blocks(target);
            prop_assert_eq!(blocks.iter().map(|&(r0, r1)| r1 - r0).sum::<usize>(), rows);
            for w in blocks.windows(2) {
                prop_assert_eq!(w[0].1, w[1].0);
            }
        }
    }
}
