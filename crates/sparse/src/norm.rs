//! Adjacency normalisation: the `Ŝ = D^{-1/2}(A + I)D^{-1/2}` operator of
//! the paper (§4.1/§4.3), plus the row-stochastic variant used by the
//! GraphSAGE-style mean aggregator in the FedSage+ baseline.

use crate::csr::Csr;

/// Builds the symmetrically normalised adjacency with self-loops,
/// `Ŝ = D^{-1/2}(A + I)D^{-1/2}` with `D_ii = Σ_j (A + I)_ij`.
///
/// `edges` are undirected pairs; both directions are inserted. Duplicate
/// edges are collapsed to weight 1 (graphs here are unweighted, matching
/// the paper's datasets). Self-loop duplicates in the input are ignored.
pub fn normalized_adjacency(n: usize, edges: &[(usize, usize)]) -> Csr {
    let a = undirected_with_self_loops(n, edges);
    let deg: Vec<f32> = a.row_abs_sums();
    let inv_sqrt: Vec<f32> = deg
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    scale_sym(&a, &inv_sqrt)
}

/// Row-stochastic normalisation `D^{-1}(A + I)` — every row sums to 1.
/// This is the "mean over neighbours plus self" aggregator.
pub fn row_normalized_adjacency(n: usize, edges: &[(usize, usize)]) -> Csr {
    let a = undirected_with_self_loops(n, edges);
    let deg = a.row_abs_sums();
    let mut entries = Vec::with_capacity(a.nnz());
    for (r, &d) in deg.iter().enumerate() {
        let (idx, vals) = a.row(r);
        let inv = if d > 0.0 { 1.0 / d } else { 0.0 };
        for (&c, &v) in idx.iter().zip(vals) {
            entries.push((r, c as usize, v * inv));
        }
    }
    Csr::from_coo(n, n, entries)
}

/// The binary undirected adjacency `A + I` (weights 1, duplicates collapsed).
pub fn undirected_with_self_loops(n: usize, edges: &[(usize, usize)]) -> Csr {
    let mut set = std::collections::BTreeSet::new();
    for &(u, v) in edges {
        assert!(u < n && v < n, "edge ({u},{v}) out of bounds for n={n}");
        set.insert((u, v));
        set.insert((v, u));
    }
    for i in 0..n {
        set.insert((i, i));
    }
    let entries: Vec<_> = set.into_iter().map(|(u, v)| (u, v, 1.0f32)).collect();
    Csr::from_coo(n, n, entries)
}

fn scale_sym(a: &Csr, inv_sqrt: &[f32]) -> Csr {
    let n = a.rows();
    let mut entries = Vec::with_capacity(a.nnz());
    for r in 0..n {
        let (idx, vals) = a.row(r);
        for (&c, &v) in idx.iter().zip(vals) {
            entries.push((r, c as usize, v * inv_sqrt[r] * inv_sqrt[c as usize]));
        }
    }
    Csr::from_coo(n, n, entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A path graph 0-1-2.
    fn path3() -> Vec<(usize, usize)> {
        vec![(0, 1), (1, 2)]
    }

    #[test]
    fn normalized_adjacency_is_symmetric() {
        let s = normalized_adjacency(3, &path3());
        assert!(s.is_symmetric(1e-6));
    }

    #[test]
    fn normalized_adjacency_known_values() {
        // Node degrees with self-loops: d0 = 2, d1 = 3, d2 = 2.
        let s = normalized_adjacency(3, &path3());
        let d = s.to_dense();
        assert!((d[(0, 0)] - 0.5).abs() < 1e-6);
        assert!((d[(0, 1)] - 1.0 / (2.0f32 * 3.0).sqrt()).abs() < 1e-6);
        assert!((d[(1, 1)] - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(d[(0, 2)], 0.0);
    }

    #[test]
    fn spectral_norm_at_most_one() {
        // Power iteration on Ŝ of a random-ish graph: the top eigenvalue of
        // the self-looped symmetric normalisation is exactly 1.
        let edges: Vec<_> = (0..30).map(|i| (i, (i * 7 + 3) % 31)).collect();
        let s = normalized_adjacency(31, &edges);
        let mut v = vec![1.0f32; 31];
        for _ in 0..100 {
            let w = s.spmv(&v);
            let norm = w.iter().map(|x| x * x).sum::<f32>().sqrt();
            v = w.into_iter().map(|x| x / norm).collect();
        }
        let sv = s.spmv(&v);
        let lambda: f32 = v.iter().zip(&sv).map(|(a, b)| a * b).sum();
        assert!(lambda <= 1.0 + 1e-4, "spectral norm {lambda} exceeds 1");
        assert!(lambda > 0.9, "top eigenvalue {lambda} suspiciously small");
    }

    #[test]
    fn row_normalized_rows_sum_to_one() {
        let s = row_normalized_adjacency(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        for r in 0..4 {
            let sum: f32 = s.row(r).1.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn isolated_nodes_get_self_loop_only() {
        let s = normalized_adjacency(3, &[(0, 1)]);
        // Node 2 is isolated: with the self-loop its degree is 1 and
        // Ŝ[2,2] = 1.
        let d = s.to_dense();
        assert!((d[(2, 2)] - 1.0).abs() < 1e-6);
        assert_eq!(d[(2, 0)], 0.0);
    }

    #[test]
    fn duplicate_and_reversed_edges_collapse() {
        let a = normalized_adjacency(3, &[(0, 1), (1, 0), (0, 1)]);
        let b = normalized_adjacency(3, &[(0, 1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph_is_identity() {
        let s = normalized_adjacency(4, &[]);
        s.to_dense()
            .assert_close(&fedomd_tensor::Matrix::identity(4), 1e-6);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Ŝ is always symmetric with unit diagonal bound and nonnegative
        /// entries, for any random edge set.
        #[test]
        fn normalized_adjacency_invariants(
            n in 1usize..25,
            raw in proptest::collection::vec((0usize..25, 0usize..25), 0..60)
        ) {
            let edges: Vec<_> =
                raw.into_iter().filter(|&(u, v)| u < n && v < n && u != v).collect();
            let s = normalized_adjacency(n, &edges);
            prop_assert!(s.is_symmetric(1e-6));
            prop_assert!(s.validate().is_ok());
            for r in 0..n {
                for &v in s.row(r).1 {
                    prop_assert!((0.0..=1.0 + 1e-6).contains(&v));
                }
            }
        }

        /// Row-stochastic normalisation always yields rows summing to 1.
        #[test]
        fn row_normalized_rows_always_sum_to_one(
            n in 1usize..25,
            raw in proptest::collection::vec((0usize..25, 0usize..25), 0..60)
        ) {
            let edges: Vec<_> =
                raw.into_iter().filter(|&(u, v)| u < n && v < n && u != v).collect();
            let s = row_normalized_adjacency(n, &edges);
            for r in 0..n {
                let sum: f32 = s.row(r).1.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-5, "row {} sums to {}", r, sum);
            }
        }

        /// Ŝ has spectral norm ≤ 1: propagation never expands the ℓ2 norm
        /// of any vector (the depth-stability property Ortho-GCN builds on).
        #[test]
        fn propagation_is_l2_nonexpansive(
            n in 1usize..20,
            raw in proptest::collection::vec((0usize..20, 0usize..20), 0..40),
            xs in proptest::collection::vec(-2.0f32..2.0, 20)
        ) {
            let edges: Vec<_> =
                raw.into_iter().filter(|&(u, v)| u < n && v < n && u != v).collect();
            let s = normalized_adjacency(n, &edges);
            let x: Vec<f32> = xs.into_iter().take(n).collect();
            let out = s.spmv(&x);
            let norm_in: f32 = x.iter().map(|v| v * v).sum::<f32>().sqrt();
            let norm_out: f32 = out.iter().map(|v| v * v).sum::<f32>().sqrt();
            prop_assert!(
                norm_out <= norm_in * (1.0 + 1e-4) + 1e-6,
                "ℓ2 norm expanded: {} -> {}", norm_in, norm_out
            );
        }
    }
}
