//! Sparse matrix substrate for graph propagation.
//!
//! The paper's graph convolutions all propagate through the symmetrically
//! normalised adjacency `Ŝ = D^{-1/2}(A + I)D^{-1/2}` (its Eq. 7/9 and the
//! `Ã` of §4.1). This crate provides the CSR storage for that operator, a
//! rayon-parallel sparse-dense product ([`Csr::spmm`]), and the
//! normalisation constructors ([`normalized_adjacency`]).

pub mod csr;
pub mod norm;

pub use csr::Csr;
pub use norm::{normalized_adjacency, row_normalized_adjacency};
