//! Property-based tests over random graphs: structural invariants of the
//! Louvain cut, the party assignment, and the splits must hold for *any*
//! topology, not just the planted ones the unit tests use.

#![cfg(test)]

use proptest::prelude::*;

use crate::graph::Graph;
use crate::louvain::{louvain, modularity, LouvainConfig};
use crate::partition::{assign_parties, louvain_cut};
use crate::split::{split_nodes, SplitRatios};

fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (2usize..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m)
            .prop_map(move |edges| Graph::new(n, &edges))
    })
}

proptest! {
    /// Louvain labels are always dense 0..k and cover every node.
    #[test]
    fn louvain_labels_dense(g in arb_graph(30, 60), seed in 0u64..50) {
        let cfg = LouvainConfig { seed, ..Default::default() };
        let labels = louvain(&g, &cfg);
        prop_assert_eq!(labels.len(), g.n_nodes());
        let k = labels.iter().copied().max().unwrap() + 1;
        for c in 0..k {
            prop_assert!(labels.contains(&c), "label {} missing", c);
        }
    }

    /// Louvain's partition never has worse modularity than all-singletons.
    #[test]
    fn louvain_beats_singletons(g in arb_graph(25, 80)) {
        if g.n_edges() == 0 { return Ok(()); }
        let labels = louvain(&g, &Default::default());
        let singletons: Vec<usize> = (0..g.n_nodes()).collect();
        prop_assert!(
            modularity(&g, &labels, 1.0) >= modularity(&g, &singletons, 1.0) - 1e-9
        );
    }

    /// Connected nodes in the same Louvain community stay in one party, and
    /// every node lands in exactly one party.
    #[test]
    fn louvain_cut_partitions_nodes(g in arb_graph(30, 60), m in 1usize..6) {
        let parties = louvain_cut(&g, m, &Default::default());
        prop_assert_eq!(parties.len(), m);
        let mut seen = vec![0usize; g.n_nodes()];
        for p in &parties {
            for &gid in &p.global_ids {
                seen[gid] += 1;
            }
            // Local edges are internal: endpoints within bounds.
            for &(u, v) in p.graph.edges() {
                prop_assert!(u < p.graph.n_nodes() && v < p.graph.n_nodes());
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "node covered {:?} times", seen);
    }

    /// Greedy assignment balances: no party exceeds the ideal share by more
    /// than the largest community size.
    #[test]
    fn assignment_is_balanced(
        sizes in proptest::collection::vec(1usize..20, 1..12), m in 1usize..5
    ) {
        let mut community = Vec::new();
        for (c, &s) in sizes.iter().enumerate() {
            community.extend(std::iter::repeat_n(c, s));
        }
        let assign = assign_parties(&community, m);
        let mut load = vec![0usize; m];
        for (&party, &s) in assign.iter().zip(&sizes) {
            load[party] += s;
        }
        let total: usize = sizes.iter().sum();
        let biggest = *sizes.iter().max().expect("non-empty");
        let max_load = *load.iter().max().expect("m >= 1");
        prop_assert!(max_load <= total.div_ceil(m) + biggest);
    }

    /// Splits are always disjoint subsets of the node set, and the train
    /// fallback guarantees a non-empty train set for n >= 3.
    #[test]
    fn splits_disjoint_and_nonempty(
        labels in proptest::collection::vec(0usize..5, 3..200), seed in 0u64..20
    ) {
        let s = split_nodes(&labels, SplitRatios::mini(), seed);
        let mut seen = std::collections::HashSet::new();
        for &i in s.train.iter().chain(&s.val).chain(&s.test) {
            prop_assert!(i < labels.len());
            prop_assert!(seen.insert(i), "index {} duplicated", i);
        }
        prop_assert!(!s.train.is_empty());
    }
}
