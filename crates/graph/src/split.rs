//! Train/validation/test node splits.
//!
//! The paper (Table 2 caption) splits every dataset "into train, validation,
//! and test sets at a ratio of 1%, 20%, and 20%" — a deliberately tiny label
//! rate that FedSage+/FedLIT suffer under (§5.2). Splits are drawn per node
//! set with a seeded RNG and are stratified by class when possible, so each
//! class appears in the train set whenever it has enough nodes.

use fedomd_tensor::rng::seeded;
use rand::seq::SliceRandom;

/// Split fractions; the remainder after train+val+test is unlabeled.
#[derive(Clone, Copy, Debug)]
pub struct SplitRatios {
    pub train: f64,
    pub val: f64,
    pub test: f64,
}

impl SplitRatios {
    /// The paper's 1% / 20% / 20% setting.
    pub fn paper() -> Self {
        Self {
            train: 0.01,
            val: 0.20,
            test: 0.20,
        }
    }

    /// The mini-scale setting: datasets are ~5× smaller than the paper's,
    /// so a 5% train rate preserves the paper's *absolute* number of
    /// training nodes per party (a handful), which is what the learning
    /// regime actually depends on.
    pub fn mini() -> Self {
        Self {
            train: 0.05,
            val: 0.20,
            test: 0.20,
        }
    }
}

/// Index sets for one party (indices are into whatever node space the
/// caller passed in — local ids for per-party splits).
#[derive(Clone, Debug, Default)]
pub struct Splits {
    pub train: Vec<usize>,
    pub val: Vec<usize>,
    pub test: Vec<usize>,
}

/// Draws a class-stratified split over `n` nodes with the given labels.
///
/// Per class, `floor(train·count)` nodes go to train, then `val` and
/// `test` fractions; leftovers are unlabeled. The floor keeps the overall
/// label rate at the paper's brutal 1 % even for small parties — most
/// classes contribute *no* training node, which is precisely the regime
/// the paper studies (§5.2 discusses baselines degrading under this label
/// rate). A party that would end up with zero train nodes overall is
/// given one, from its largest class, so its CE loss is defined. Panics
/// when ratios sum to more than 1.
pub fn split_nodes(labels: &[usize], ratios: SplitRatios, seed: u64) -> Splits {
    assert!(
        ratios.train + ratios.val + ratios.test <= 1.0 + 1e-9,
        "split ratios sum to more than 1"
    );
    let n = labels.len();
    let n_classes = labels.iter().copied().max().map_or(0, |c| c + 1);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, &c) in labels.iter().enumerate() {
        per_class[c].push(i);
    }

    let mut rng = seeded(seed);
    let mut out = Splits::default();
    // Remember where each class's train quota ended so the zero-train
    // fallback can promote the next unassigned node of the largest class.
    let mut promotable: Option<usize> = None;
    let mut largest = 0usize;
    for nodes in per_class.iter_mut() {
        nodes.shuffle(&mut rng);
        let cnt = nodes.len();
        if cnt == 0 {
            continue;
        }
        let n_train = ((ratios.train * cnt as f64).floor() as usize).min(cnt);
        let n_val = ((ratios.val * cnt as f64).round() as usize).min(cnt - n_train);
        let n_test = ((ratios.test * cnt as f64).round() as usize).min(cnt - n_train - n_val);

        out.train.extend(&nodes[..n_train]);
        out.val.extend(&nodes[n_train..n_train + n_val]);
        out.test
            .extend(&nodes[n_train + n_val..n_train + n_val + n_test]);
        // A node beyond every quota is promotable to train if needed.
        if n_train + n_val + n_test < cnt && cnt > largest {
            largest = cnt;
            promotable = Some(nodes[cnt - 1]);
        }
    }
    if out.train.is_empty() {
        if let Some(node) = promotable {
            out.train.push(node);
        } else if let Some(&node) = out.test.first() {
            // Degenerate tiny party: move one test node to train.
            out.train.push(node);
            out.test.remove(0);
        }
    }
    out.train.sort_unstable();
    out.val.sort_unstable();
    out.test.sort_unstable();
    let _ = n;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize, k: usize) -> Vec<usize> {
        (0..n).map(|i| i % k).collect()
    }

    #[test]
    fn splits_are_disjoint() {
        let l = labels(500, 5);
        let s = split_nodes(&l, SplitRatios::paper(), 3);
        let mut seen = std::collections::HashSet::new();
        for idx in s.train.iter().chain(&s.val).chain(&s.test) {
            assert!(seen.insert(*idx), "index {idx} appears twice");
        }
    }

    #[test]
    fn paper_ratios_approximately_hold() {
        let l = labels(10_000, 10);
        let s = split_nodes(&l, SplitRatios::paper(), 0);
        assert!(
            (s.train.len() as f64 - 100.0).abs() <= 10.0,
            "train {}",
            s.train.len()
        );
        assert!(
            (s.val.len() as f64 - 2000.0).abs() <= 50.0,
            "val {}",
            s.val.len()
        );
        assert!(
            (s.test.len() as f64 - 2000.0).abs() <= 50.0,
            "test {}",
            s.test.len()
        );
    }

    #[test]
    fn every_class_reaches_train_when_possible() {
        let l = labels(700, 7);
        let s = split_nodes(&l, SplitRatios::paper(), 1);
        let classes: std::collections::HashSet<usize> = s.train.iter().map(|&i| l[i]).collect();
        assert_eq!(classes.len(), 7);
    }

    #[test]
    fn deterministic_per_seed_and_varies_across_seeds() {
        let l = labels(300, 3);
        let a = split_nodes(&l, SplitRatios::paper(), 5);
        let b = split_nodes(&l, SplitRatios::paper(), 5);
        let c = split_nodes(&l, SplitRatios::paper(), 6);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
        assert_ne!(a.test, c.test, "different seeds should differ");
    }

    #[test]
    fn tiny_party_still_splits_sanely() {
        let l = vec![0, 0, 0, 1, 1, 1];
        let s = split_nodes(&l, SplitRatios::paper(), 0);
        assert!(!s.train.is_empty());
        let total = s.train.len() + s.val.len() + s.test.len();
        assert!(total <= 6);
    }

    #[test]
    #[should_panic(expected = "more than 1")]
    fn over_unity_ratios_rejected() {
        let _ = split_nodes(
            &[0, 1],
            SplitRatios {
                train: 0.5,
                val: 0.5,
                test: 0.5,
            },
            0,
        );
    }

    #[test]
    fn empty_labels_give_empty_splits() {
        let s = split_nodes(&[], SplitRatios::paper(), 0);
        assert!(s.train.is_empty() && s.val.is_empty() && s.test.is_empty());
    }
}
