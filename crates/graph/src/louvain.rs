//! Louvain community detection (Blondel et al. 2008, the paper's reference 2)
//! with the `resolution` hyper-parameter studied in the paper's Fig. 7.
//!
//! The implementation is the standard two-phase method: repeated greedy
//! local moves maximising the (resolution-scaled) modularity gain, followed
//! by aggregation of communities into super-nodes, until the modularity
//! stops improving. Node visit order is shuffled deterministically from the
//! configured seed, so partitions are reproducible.

use crate::graph::Graph;
use fedomd_tensor::rng::seeded;
use rand::seq::SliceRandom;

/// Configuration of the Louvain run.
#[derive(Clone, Copy, Debug)]
pub struct LouvainConfig {
    /// Resolution `γ` of the modularity objective
    /// `Q = Σ_c [ Σ_in/(2m) − γ (Σ_tot/(2m))² ]`. Larger values produce more,
    /// smaller communities (the behaviour the paper sweeps in Fig. 7).
    pub resolution: f64,
    /// RNG seed for the node-visit shuffle.
    pub seed: u64,
    /// Maximum passes of the outer (aggregate) loop; a safety valve only —
    /// convergence normally happens in a handful of passes.
    pub max_levels: usize,
}

impl Default for LouvainConfig {
    fn default() -> Self {
        Self {
            resolution: 1.0,
            seed: 0,
            max_levels: 32,
        }
    }
}

/// Weighted multigraph used internally between aggregation levels.
struct WGraph {
    n: usize,
    /// Adjacency as (neighbor, weight); may include a self-loop entry.
    adj: Vec<Vec<(usize, f64)>>,
    /// Total edge weight `m` (each undirected edge counted once; self-loops
    /// counted once with their full weight).
    total_weight: f64,
    /// Weighted degree per node (self-loops count twice, per convention).
    degree: Vec<f64>,
}

impl WGraph {
    fn from_graph(g: &Graph) -> Self {
        let n = g.n_nodes();
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in g.edges() {
            adj[u].push((v, 1.0));
            adj[v].push((u, 1.0));
        }
        let degree: Vec<f64> = adj
            .iter()
            .map(|nb| nb.iter().map(|&(_, w)| w).sum())
            .collect();
        let total_weight = g.n_edges() as f64;
        Self {
            n,
            adj,
            total_weight,
            degree,
        }
    }
}

/// Runs Louvain and returns a community label per node, labels dense `0..k`.
pub fn louvain(g: &Graph, cfg: &LouvainConfig) -> Vec<usize> {
    if g.n_nodes() == 0 {
        return Vec::new();
    }
    if g.n_edges() == 0 {
        return (0..g.n_nodes()).collect();
    }

    let mut wg = WGraph::from_graph(g);
    // membership[node in ORIGINAL graph] -> current super-node id.
    let mut membership: Vec<usize> = (0..g.n_nodes()).collect();
    let mut rng = seeded(cfg.seed);

    for _level in 0..cfg.max_levels {
        let (assign, improved) = one_level(&wg, cfg.resolution, &mut rng);
        let assign = renumber(&assign);
        for m in membership.iter_mut() {
            *m = assign[*m];
        }
        let n_comms = assign.iter().copied().max().map_or(0, |m| m + 1);
        if !improved || n_comms == wg.n {
            break;
        }
        wg = aggregate(&wg, &assign, n_comms);
    }
    renumber(&membership)
}

/// One pass of greedy local moves. Returns (community per node, improved?).
fn one_level(
    wg: &WGraph,
    resolution: f64,
    rng: &mut rand_chacha::ChaCha8Rng,
) -> (Vec<usize>, bool) {
    let n = wg.n;
    let m2 = 2.0 * wg.total_weight; // 2m
    let mut community: Vec<usize> = (0..n).collect();
    // Σ_tot per community: total weighted degree of members.
    let mut sigma_tot: Vec<f64> = wg.degree.clone();

    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);

    let mut improved_any = false;
    // neighbour-community weights scratch buffer, reset per node.
    let mut nbw: Vec<f64> = vec![0.0; n];
    let mut touched: Vec<usize> = Vec::new();

    loop {
        let mut moved = 0usize;
        for &u in &order {
            let cu = community[u];
            // Collect edge weight from u to each neighbouring community.
            touched.clear();
            let mut self_loop = 0.0;
            for &(v, w) in &wg.adj[u] {
                if v == u {
                    self_loop += w;
                    continue;
                }
                let cv = community[v];
                if nbw[cv] == 0.0 {
                    touched.push(cv);
                }
                nbw[cv] += w;
            }
            let _ = self_loop; // self-loop weight cancels in the gain comparison

            // Remove u from its community.
            sigma_tot[cu] -= wg.degree[u];
            let w_to_own = nbw[cu];

            // Best destination: maximise ΔQ ∝ w(u→c) − γ k_u Σ_tot(c) / 2m.
            let mut best_c = cu;
            let mut best_gain = w_to_own - resolution * wg.degree[u] * sigma_tot[cu] / m2;
            for &c in &touched {
                if c == cu {
                    continue;
                }
                let gain = nbw[c] - resolution * wg.degree[u] * sigma_tot[c] / m2;
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_c = c;
                }
            }

            sigma_tot[best_c] += wg.degree[u];
            if best_c != cu {
                community[u] = best_c;
                moved += 1;
                improved_any = true;
            }
            for &c in &touched {
                nbw[c] = 0.0;
            }
        }
        if moved == 0 {
            break;
        }
    }
    (community, improved_any)
}

/// Renumbers labels to be dense `0..k`, first-seen order.
fn renumber(labels: &[usize]) -> Vec<usize> {
    let mut map = std::collections::HashMap::new();
    let mut next = 0usize;
    labels
        .iter()
        .map(|&l| {
            *map.entry(l).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            })
        })
        .collect()
}

/// Builds the aggregated weighted graph where each community becomes one
/// super-node; intra-community weight becomes a self-loop.
fn aggregate(wg: &WGraph, assign: &[usize], n_comms: usize) -> WGraph {
    // BTreeMap, not HashMap: the iteration below fixes the super-graph's
    // adjacency order, and through it float summation order and move
    // tie-breaking, so partitions are reproducible across runs.
    let mut weights: std::collections::BTreeMap<(usize, usize), f64> =
        std::collections::BTreeMap::new();
    for u in 0..wg.n {
        let cu = assign[u];
        for &(v, w) in &wg.adj[u] {
            let cv = assign[v];
            if cu <= cv {
                // Each undirected edge appears twice in adj (u->v and v->u);
                // count it once. Self-loops (u == v) appear once already.
                if cu < cv || u <= v {
                    *weights.entry((cu, cv)).or_insert(0.0) += w;
                }
            }
        }
    }
    let mut adj = vec![Vec::new(); n_comms];
    let mut total_weight = 0.0;
    for (&(a, b), &w) in &weights {
        total_weight += w;
        if a == b {
            adj[a].push((a, 2.0 * w)); // self-loop contributes 2w to degree
        } else {
            adj[a].push((b, w));
            adj[b].push((a, w));
        }
    }
    let degree: Vec<f64> = adj
        .iter()
        .map(|nb| nb.iter().map(|&(_, w)| w).sum())
        .collect();
    WGraph {
        n: n_comms,
        adj,
        total_weight,
        degree,
    }
}

/// Modularity of a partition at a given resolution (for tests/diagnostics).
pub fn modularity(g: &Graph, labels: &[usize], resolution: f64) -> f64 {
    assert_eq!(labels.len(), g.n_nodes());
    let m = g.n_edges() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let k = labels.iter().copied().max().map_or(0, |x| x + 1);
    let mut intra = vec![0.0f64; k];
    let mut tot = vec![0.0f64; k];
    for &(u, v) in g.edges() {
        if labels[u] == labels[v] {
            intra[labels[u]] += 1.0;
        }
    }
    for u in 0..g.n_nodes() {
        tot[labels[u]] += g.degree(u) as f64;
    }
    (0..k)
        .map(|c| intra[c] / m - resolution * (tot[c] / (2.0 * m)).powi(2))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 5-cliques joined by a single bridge edge.
    fn two_cliques() -> Graph {
        let mut edges = Vec::new();
        for a in 0..5 {
            for b in (a + 1)..5 {
                edges.push((a, b));
                edges.push((a + 5, b + 5));
            }
        }
        edges.push((4, 5));
        Graph::new(10, &edges)
    }

    #[test]
    fn separates_two_cliques() {
        let g = two_cliques();
        let labels = louvain(&g, &LouvainConfig::default());
        // All of clique 1 together, all of clique 2 together, different labels.
        for i in 1..5 {
            assert_eq!(labels[i], labels[0]);
            assert_eq!(labels[i + 5], labels[5]);
        }
        assert_ne!(labels[0], labels[5]);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = two_cliques();
        let cfg = LouvainConfig {
            seed: 7,
            ..Default::default()
        };
        assert_eq!(louvain(&g, &cfg), louvain(&g, &cfg));
    }

    #[test]
    fn higher_resolution_never_coarsens() {
        // A ring of 4 triangles.
        let mut edges = Vec::new();
        for t in 0..4 {
            let base = t * 3;
            edges.push((base, base + 1));
            edges.push((base, base + 2));
            edges.push((base + 1, base + 2));
            edges.push((base + 2, (base + 3) % 12));
        }
        let g = Graph::new(12, &edges);
        let low = louvain(
            &g,
            &LouvainConfig {
                resolution: 0.1,
                ..Default::default()
            },
        );
        let high = louvain(
            &g,
            &LouvainConfig {
                resolution: 8.0,
                ..Default::default()
            },
        );
        let n_low = low.iter().copied().max().unwrap() + 1;
        let n_high = high.iter().copied().max().unwrap() + 1;
        assert!(
            n_high >= n_low,
            "resolution 8 produced {n_high} communities < resolution 0.1's {n_low}"
        );
    }

    #[test]
    fn modularity_of_found_partition_beats_trivial() {
        let g = two_cliques();
        let labels = louvain(&g, &LouvainConfig::default());
        let q_found = modularity(&g, &labels, 1.0);
        let q_all_one = modularity(&g, &[0; 10], 1.0);
        assert!(q_found > q_all_one);
        assert!(q_found > 0.3, "two-clique modularity {q_found} too low");
    }

    #[test]
    fn labels_are_dense() {
        let g = two_cliques();
        let labels = louvain(&g, &LouvainConfig::default());
        let k = labels.iter().copied().max().unwrap() + 1;
        for c in 0..k {
            assert!(labels.contains(&c), "label {c} missing");
        }
    }

    #[test]
    fn edgeless_graph_gives_singletons() {
        let g = Graph::new(4, &[]);
        assert_eq!(louvain(&g, &LouvainConfig::default()), vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::new(0, &[]);
        assert!(louvain(&g, &LouvainConfig::default()).is_empty());
    }
}
