//! Graph substrate for the FedOMD reproduction.
//!
//! Provides the undirected [`Graph`] topology type, the Louvain community
//! detector with the `resolution` hyper-parameter (the paper partitions its
//! global graphs into party subgraphs with "the Louvain-cut algorithm",
//! §5.1 and Fig. 7), the community→party assignment, induced-subgraph
//! extraction, and the 1 % / 20 % / 20 % train/val/test splits.

#![forbid(unsafe_code)]

pub mod graph;
pub mod louvain;
pub mod partition;
pub mod split;

pub use graph::Graph;
pub use louvain::{louvain, LouvainConfig};
pub use partition::{
    assign_parties, extract_parties, label_histograms, louvain_cut, rebalance_empty_parties,
    PartySubgraph,
};
pub use split::{split_nodes, SplitRatios, Splits};

#[cfg(test)]
mod proptests;
