//! Community → party assignment: the paper's "Louvain-cut" (§5.1).
//!
//! The paper partitions each global graph into `M` party subgraphs by
//! running Louvain and distributing the resulting communities across
//! parties. We use the standard greedy bin-packing used by the FedSage
//! line of work: communities sorted by size, each assigned to the currently
//! smallest party, which yields the strongly non-i.i.d. label distributions
//! visualised in the paper's Fig. 4.

use crate::graph::Graph;
use crate::louvain::{louvain, LouvainConfig};

/// One party's local subgraph, with the local→global node mapping.
#[derive(Clone, Debug)]
pub struct PartySubgraph {
    /// The induced local topology (node ids are local, dense).
    pub graph: Graph,
    /// `global_ids[local] == global node id` in the original graph.
    pub global_ids: Vec<usize>,
}

/// Assigns `k` communities to `m` parties by greedy balanced bin-packing.
/// Returns `party[community] = party id`.
///
/// Communities are processed largest-first; each goes to the party with the
/// fewest nodes so far. When there are fewer communities than parties, the
/// largest communities are split round-robin so every party is non-empty.
///
/// The "smallest party" lookup runs on a min-heap keyed `(load, party)`, so
/// the whole assignment is `O((k + m) log m)` — a linear scan per community
/// would be quadratic at federation scale (thousands of parties). Ties
/// break toward the lowest party id, exactly as a first-minimum scan would.
pub fn assign_parties(community: &[usize], m: usize) -> Vec<usize> {
    assert!(m >= 1, "need at least one party");
    let k = community.iter().copied().max().map_or(0, |c| c + 1);
    let mut sizes = vec![0usize; k];
    for &c in community {
        sizes[c] += 1;
    }
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_unstable_by_key(|&c| std::cmp::Reverse(sizes[c]));

    let mut party_of_comm = vec![0usize; k];
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(usize, usize)>> =
        (0..m).map(|p| std::cmp::Reverse((0, p))).collect();
    for &c in &order {
        let std::cmp::Reverse((load, p)) = heap.pop().expect("m >= 1");
        party_of_comm[c] = p;
        heap.push(std::cmp::Reverse((load + sizes[c], p)));
    }
    party_of_comm
}

/// Runs the full Louvain-cut: Louvain at the given resolution, then greedy
/// assignment to `m` parties, then induced-subgraph extraction.
///
/// Parties that end up empty (possible when the graph has fewer communities
/// than parties and some community is huge) are filled by stealing nodes
/// round-robin from the largest party so every client has data to train on.
pub fn louvain_cut(g: &Graph, m: usize, cfg: &LouvainConfig) -> Vec<PartySubgraph> {
    assert!(m >= 1, "need at least one party");
    let community = louvain(g, cfg);
    let party_of_comm = assign_parties(&community, m);
    let mut node_party: Vec<usize> = community.iter().map(|&c| party_of_comm[c]).collect();

    rebalance_empty_parties(&mut node_party, m);
    extract_parties(g, &node_party, m)
}

/// Extracts every party's induced subgraph from a node→party assignment in
/// one pass over the nodes and one pass over the edges — `O(n + E + m)`
/// total, where calling [`Graph::induced_subgraph`] per party would cost
/// `O(m · (n + E))` and dominate setup at thousands of parties.
///
/// Output is identical to the per-party extraction: local ids follow
/// ascending global id, and surviving edges keep the global edge order.
pub fn extract_parties(g: &Graph, node_party: &[usize], m: usize) -> Vec<PartySubgraph> {
    assert_eq!(node_party.len(), g.n_nodes(), "assignment length mismatch");
    assert!(node_party.iter().all(|&p| p < m), "party id out of range");
    let mut local_id = vec![0usize; g.n_nodes()];
    let mut global_ids: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (u, &p) in node_party.iter().enumerate() {
        local_id[u] = global_ids[p].len();
        global_ids[p].push(u);
    }
    let mut edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); m];
    for &(u, v) in g.edges() {
        let p = node_party[u];
        if node_party[v] == p {
            edges[p].push((local_id[u], local_id[v]));
        }
    }
    global_ids
        .into_iter()
        .zip(edges)
        .map(|(ids, es)| PartySubgraph {
            graph: Graph::new(ids.len(), &es),
            global_ids: ids,
        })
        .collect()
}

/// Ensures every party id in `0..m` owns at least one node by moving nodes
/// out of the largest party. Deterministic (takes highest-indexed nodes).
///
/// Party sizes are counted once and maintained incrementally, so the cost
/// is `O(n + m·e)` for `e` initially-empty parties rather than a full
/// recount per move.
pub fn rebalance_empty_parties(node_party: &mut [usize], m: usize) {
    if node_party.len() < m {
        // Cannot make every party non-empty; leave as is.
        return;
    }
    let mut counts = vec![0usize; m];
    for &p in node_party.iter() {
        counts[p] += 1;
    }
    // Ascending node lists per party: popping the back yields the
    // highest-indexed node, matching the original reverse scan.
    let mut nodes_of: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (u, &p) in node_party.iter().enumerate() {
        nodes_of[p].push(u);
    }
    // Filling a party cannot empty another (the donor always keeps ≥ 1
    // node), so the empty set is fixed up front; it is processed in
    // ascending order, as the original first-empty scan did.
    let empties: Vec<usize> = (0..m).filter(|&p| counts[p] == 0).collect();
    for empty in empties {
        let donor = (0..m).max_by_key(|&p| counts[p]).expect("m >= 1");
        let node = nodes_of[donor].pop().expect("donor party non-empty");
        node_party[node] = empty;
        nodes_of[empty].push(node);
        counts[donor] -= 1;
        counts[empty] += 1;
    }
}

/// Per-party label histograms: `hist[party][class] = count`. This is the
/// data behind the paper's Fig. 4 bubble plot.
pub fn label_histograms(
    parties: &[PartySubgraph],
    labels: &[usize],
    n_classes: usize,
) -> Vec<Vec<usize>> {
    parties
        .iter()
        .map(|p| {
            let mut h = vec![0usize; n_classes];
            for &g in &p.global_ids {
                assert!(labels[g] < n_classes, "label {} out of range", labels[g]);
                h[labels[g]] += 1;
            }
            h
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique_chain(k: usize, size: usize) -> Graph {
        // k cliques of `size` nodes, chained by single bridges.
        let mut edges = Vec::new();
        for c in 0..k {
            let base = c * size;
            for a in 0..size {
                for b in (a + 1)..size {
                    edges.push((base + a, base + b));
                }
            }
            if c + 1 < k {
                edges.push((base + size - 1, base + size));
            }
        }
        Graph::new(k * size, &edges)
    }

    #[test]
    fn assign_parties_balances_sizes() {
        // Communities of sizes 6, 4, 3, 3 over 2 parties -> 8 vs 8 split.
        let mut community = Vec::new();
        for (c, &s) in [6usize, 4, 3, 3].iter().enumerate() {
            community.extend(std::iter::repeat_n(c, s));
        }
        let assign = assign_parties(&community, 2);
        let mut load = [0usize; 2];
        for (&c, &s) in assign.iter().zip(&[6usize, 4, 3, 3]) {
            load[c] += s;
        }
        assert_eq!(load[0] + load[1], 16);
        assert!(load[0].abs_diff(load[1]) <= 2, "loads {load:?} unbalanced");
    }

    #[test]
    fn louvain_cut_covers_all_nodes_exactly_once() {
        let g = clique_chain(6, 5);
        let parties = louvain_cut(&g, 3, &LouvainConfig::default());
        assert_eq!(parties.len(), 3);
        let mut seen = vec![false; g.n_nodes()];
        for p in &parties {
            assert_eq!(p.graph.n_nodes(), p.global_ids.len());
            for &gid in &p.global_ids {
                assert!(!seen[gid], "node {gid} in two parties");
                seen[gid] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some node unassigned");
    }

    #[test]
    fn every_party_nonempty() {
        let g = clique_chain(2, 4); // only ~2 communities
        let parties = louvain_cut(&g, 5, &LouvainConfig::default());
        for (i, p) in parties.iter().enumerate() {
            assert!(p.graph.n_nodes() > 0, "party {i} empty");
        }
    }

    #[test]
    fn subgraph_edges_are_internal_only() {
        let g = clique_chain(4, 5);
        let parties = louvain_cut(&g, 2, &LouvainConfig::default());
        let total_local_edges: usize = parties.iter().map(|p| p.graph.n_edges()).sum();
        // Cross-party edges are dropped, so local edges cannot exceed global.
        assert!(total_local_edges <= g.n_edges());
        // With a clique-structured graph, Louvain should keep most edges local.
        assert!(total_local_edges >= g.n_edges() / 2);
    }

    #[test]
    fn label_histograms_count_correctly() {
        let g = clique_chain(2, 3);
        let parties = louvain_cut(&g, 2, &LouvainConfig::default());
        let labels = vec![0, 0, 0, 1, 1, 1];
        let hists = label_histograms(&parties, &labels, 2);
        let total: usize = hists.iter().flatten().sum();
        assert_eq!(total, 6);
        // Louvain-cut puts each clique on its own party, so the label
        // distribution should be strongly skewed (the Fig. 4 effect).
        for h in &hists {
            assert!(h.contains(&0), "expected a non-i.i.d. histogram, got {h:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_rejected() {
        let _ = assign_parties(&[0, 1], 0);
    }
}
