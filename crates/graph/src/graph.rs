//! Undirected graph topology.

/// An undirected, unweighted graph stored as both an edge list and an
/// adjacency list.
///
/// Self-loops are rejected at construction; parallel edges are collapsed.
/// Node ids are dense `0..n`.
#[derive(Clone, Debug)]
pub struct Graph {
    n: usize,
    edges: Vec<(usize, usize)>,
    adj: Vec<Vec<usize>>,
}

impl Graph {
    /// Builds a graph on `n` nodes from an edge list. Edges are normalised
    /// to `(min, max)` order; duplicates and self-loops are dropped.
    ///
    /// # Panics
    /// Panics when an endpoint is out of bounds.
    pub fn new(n: usize, raw_edges: &[(usize, usize)]) -> Self {
        let mut edges: Vec<(usize, usize)> = raw_edges
            .iter()
            .filter(|&&(u, v)| u != v)
            .map(|&(u, v)| {
                assert!(u < n && v < n, "edge ({u},{v}) out of bounds for n={n}");
                (u.min(v), u.max(v))
            })
            .collect();
        edges.sort_unstable();
        edges.dedup();

        let mut adj = vec![Vec::new(); n];
        for &(u, v) in &edges {
            adj[u].push(v);
            adj[v].push(u);
        }
        for nb in &mut adj {
            nb.sort_unstable();
        }
        Self { n, edges, adj }
    }

    /// Number of nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// The normalised undirected edge list.
    #[inline]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Neighbours of `u` in ascending order.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Mean degree, 0 for the empty graph.
    pub fn mean_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.n_edges() as f64 / self.n as f64
        }
    }

    /// Whether edge `{u, v}` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].binary_search(&v).is_ok()
    }

    /// The subgraph induced by `nodes`, plus the mapping
    /// `local id -> global id` (which is just `nodes` deduplicated, sorted).
    pub fn induced_subgraph(&self, nodes: &[usize]) -> (Graph, Vec<usize>) {
        let mut sorted: Vec<usize> = nodes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut global_to_local = vec![usize::MAX; self.n];
        for (local, &g) in sorted.iter().enumerate() {
            global_to_local[g] = local;
        }
        let mut edges = Vec::new();
        for &(u, v) in &self.edges {
            let (lu, lv) = (global_to_local[u], global_to_local[v]);
            if lu != usize::MAX && lv != usize::MAX {
                edges.push((lu, lv));
            }
        }
        (Graph::new(sorted.len(), &edges), sorted)
    }

    /// Connected components as a label per node, labels dense `0..k`.
    pub fn connected_components(&self) -> Vec<usize> {
        let mut comp = vec![usize::MAX; self.n];
        let mut next = 0;
        let mut stack = Vec::new();
        for start in 0..self.n {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = next;
            stack.push(start);
            while let Some(u) = stack.pop() {
                for &v in self.neighbors(u) {
                    if comp[v] == usize::MAX {
                        comp[v] = next;
                        stack.push(v);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    /// Fraction of edges whose endpoints share a label (edge homophily).
    pub fn edge_homophily(&self, labels: &[usize]) -> f64 {
        assert_eq!(
            labels.len(),
            self.n,
            "edge_homophily: label length mismatch"
        );
        if self.edges.is_empty() {
            return 0.0;
        }
        let same = self
            .edges
            .iter()
            .filter(|&&(u, v)| labels[u] == labels[v])
            .count();
        same as f64 / self.edges.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Graph {
        Graph::new(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])
    }

    #[test]
    fn construction_normalises_edges() {
        let g = Graph::new(3, &[(1, 0), (0, 1), (2, 2), (1, 2)]);
        assert_eq!(g.n_edges(), 2); // duplicate collapsed, self-loop dropped
        assert_eq!(g.edges(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn adjacency_and_degree() {
        let g = square();
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.degree(2), 2);
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(0, 2));
        assert!((g.mean_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn induced_subgraph_remaps_ids() {
        let g = square();
        let (sub, mapping) = g.induced_subgraph(&[3, 1, 2]);
        assert_eq!(mapping, vec![1, 2, 3]);
        assert_eq!(sub.n_nodes(), 3);
        // Global edges (1,2) and (2,3) survive; (3,0) and (0,1) do not.
        assert_eq!(sub.n_edges(), 2);
        assert!(sub.has_edge(0, 1)); // global (1,2)
        assert!(sub.has_edge(1, 2)); // global (2,3)
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = Graph::new(5, &[(0, 1), (2, 3)]);
        let comp = g.connected_components();
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[0]);
        assert_ne!(comp[4], comp[2]);
        assert_eq!(comp.iter().copied().max().unwrap(), 2);
    }

    #[test]
    fn homophily_counts_same_label_edges() {
        let g = square();
        let labels = vec![0, 0, 1, 1];
        // Edges: (0,1) same, (1,2) diff, (2,3) same, (0,3) diff.
        assert!((g.edge_homophily(&labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0, &[]);
        assert_eq!(g.n_nodes(), 0);
        assert_eq!(g.connected_components(), Vec::<usize>::new());
    }
}
