//! [`PhaseStopwatch`]: measure a phase segment, emit one
//! [`RoundEvent::PhaseDone`].

use std::time::Instant;

use crate::event::{Phase, RoundEvent};
use crate::observer::RoundObserver;

/// A started wall-clock measurement for one phase segment.
///
/// ```
/// use fedomd_telemetry::{MemoryObserver, Phase, PhaseStopwatch};
/// let mut obs = MemoryObserver::new();
/// let sw = PhaseStopwatch::start(Phase::LocalTrain);
/// // ... the measured work ...
/// sw.finish(&mut obs);
/// assert_eq!(obs.count("phase_done"), 1);
/// ```
pub struct PhaseStopwatch {
    phase: Phase,
    started: Instant,
}

impl PhaseStopwatch {
    /// Starts timing `phase` now.
    pub fn start(phase: Phase) -> Self {
        Self {
            phase,
            started: Instant::now(),
        }
    }

    /// Stops and emits `PhaseDone`, returning the elapsed duration so the
    /// caller can also feed legacy [`fedomd_metrics`]-style buckets.
    pub fn finish(self, obs: &mut dyn RoundObserver) -> std::time::Duration {
        let elapsed = self.started.elapsed();
        obs.on_event(&RoundEvent::PhaseDone {
            phase: self.phase,
            micros: elapsed.as_micros() as u64,
        });
        elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::MemoryObserver;

    #[test]
    fn finish_emits_exactly_one_phase_event() {
        let mut obs = MemoryObserver::new();
        let d = PhaseStopwatch::start(Phase::Eval).finish(&mut obs);
        assert_eq!(obs.events.len(), 1);
        match &obs.events[0] {
            RoundEvent::PhaseDone { phase, micros } => {
                assert_eq!(*phase, Phase::Eval);
                assert!(*micros <= d.as_micros() as u64 + 1);
            }
            other => panic!("expected PhaseDone, got {other:?}"),
        }
    }
}
