//! The round-event taxonomy: everything a federated run can tell an
//! observer, as plain data.
//!
//! Events are deliberately coarse — one per *milestone*, not one per
//! tensor — so emitting them costs nanoseconds against round bodies that
//! cost milliseconds. The [`RoundEvent::to_json`] encoding is the JSONL
//! wire format consumed by `fedomd_run --telemetry` (see DESIGN.md §10
//! for the sink contract and overhead budget).

use fedomd_jsonio::{obj, Json};

/// The wall-clock phases a communication round decomposes into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Client-side forward/backward/step work.
    LocalTrain,
    /// Frame encode/transmit/collect time (both directions).
    Comms,
    /// Server-side aggregation (FedAvg, statistics reduction).
    Aggregation,
    /// Validation/test evaluation.
    Eval,
    /// Pipelined-round overlap segment: client training and server-side
    /// folding running concurrently (covers both, since they share the
    /// wall-clock interval).
    FoldOverlap,
}

impl Phase {
    /// Stable lowercase name used in the JSONL encoding.
    pub fn name(self) -> &'static str {
        match self {
            Phase::LocalTrain => "local_train",
            Phase::Comms => "comms",
            Phase::Aggregation => "aggregation",
            Phase::Eval => "eval",
            Phase::FoldOverlap => "fold_overlap",
        }
    }
}

/// One structured milestone of a federated run.
///
/// A well-formed run emits `RunStarted`, then per round `RoundStarted`
/// followed by any number of `LocalStepDone` / frame / stats / phase
/// events and a closing `RoundFinished`, then (optionally) `EarlyStopped`,
/// and finally exactly one `RunFinished`.
#[derive(Clone, Debug, PartialEq)]
pub enum RoundEvent {
    /// A run began.
    RunStarted {
        /// Algorithm name as stamped on the eventual `RunResult`.
        algorithm: String,
        /// Number of federated parties.
        n_clients: usize,
        /// Configured maximum communication rounds.
        max_rounds: usize,
    },
    /// A communication round began.
    RoundStarted {
        /// 0-based round index.
        round: u64,
    },
    /// One client finished one local optimisation step.
    LocalStepDone {
        /// Client index.
        client: u32,
        /// Local epoch within the round (0-based).
        epoch: u32,
        /// Total training loss (CE + α·ortho + β·CMD where applicable).
        loss: f64,
        /// Cross-entropy component.
        ce: f64,
        /// Scaled orthogonality component (0 when the term is off).
        ortho: f64,
        /// Scaled CMD component (0 when the term is off or the client
        /// missed the global statistics).
        cmd: f64,
    },
    /// An encoded frame was handed to the channel.
    FrameSent {
        /// Payload kind (`"WeightUpdate"`, `"StatsRound1"`, ...).
        kind: &'static str,
        /// Encoded frame size in bytes.
        bytes: u64,
    },
    /// A frame never reached its destination (dropped or past deadline).
    FrameDropped {
        /// Payload kind of the lost frame.
        kind: &'static str,
        /// Encoded size of the lost frame.
        bytes: u64,
    },
    /// The first statistics round (means up, global means down) finished.
    StatsRound1Done {
        /// Clients whose means actually reached the server.
        participants: usize,
    },
    /// The second statistics round (central moments) finished.
    StatsRound2Done {
        /// Clients whose moments actually reached the server.
        participants: usize,
    },
    /// The server aggregated this round's weight updates.
    AggregationDone {
        /// Clients whose updates arrived (≤ party count under faults).
        participants: usize,
    },
    /// A wall-clock phase segment completed. A round may emit several
    /// segments for the same phase; consumers sum them.
    PhaseDone {
        /// Which phase.
        phase: Phase,
        /// Elapsed wall-clock microseconds.
        micros: u64,
    },
    /// An evaluation-schedule round was scored.
    EvalDone {
        /// Round index that was evaluated.
        round: u64,
        /// Test-size-weighted validation accuracy.
        val_acc: f64,
        /// Test-size-weighted test accuracy.
        test_acc: f64,
    },
    /// Early stopping triggered (the run ends after this round).
    EarlyStopped {
        /// Round at which patience ran out.
        round: u64,
    },
    /// A run checkpoint was durably written (atomic rename completed).
    CheckpointSaved {
        /// Last round covered by the snapshot (a resume re-enters at
        /// `round + 1`).
        round: u64,
        /// Destination path of the checkpoint file.
        path: String,
        /// Size of the serialised checkpoint in bytes.
        bytes: u64,
    },
    /// The run resumed from a checkpoint instead of starting fresh.
    Resumed {
        /// First round the resumed run will execute.
        round: u64,
    },
    /// A communication round finished; counters are cumulative.
    RoundFinished {
        /// 0-based round index.
        round: u64,
        /// Cumulative client → server bytes.
        uplink_bytes: u64,
        /// Cumulative server → client bytes.
        downlink_bytes: u64,
        /// Cumulative messages lost in transit.
        dropped_messages: u64,
    },
    /// The run completed.
    RunFinished {
        /// Algorithm name.
        algorithm: String,
        /// Test accuracy at the best-validation round.
        test_acc: f64,
        /// Best validation accuracy.
        val_acc: f64,
        /// Round of the best validation accuracy.
        best_round: u64,
        /// Communication rounds actually run.
        rounds: u64,
    },
}

impl RoundEvent {
    /// Stable event-kind tag (the `"event"` field of the JSONL encoding).
    pub fn kind(&self) -> &'static str {
        match self {
            RoundEvent::RunStarted { .. } => "run_started",
            RoundEvent::RoundStarted { .. } => "round_started",
            RoundEvent::LocalStepDone { .. } => "local_step_done",
            RoundEvent::FrameSent { .. } => "frame_sent",
            RoundEvent::FrameDropped { .. } => "frame_dropped",
            RoundEvent::StatsRound1Done { .. } => "stats_round1_done",
            RoundEvent::StatsRound2Done { .. } => "stats_round2_done",
            RoundEvent::AggregationDone { .. } => "aggregation_done",
            RoundEvent::PhaseDone { .. } => "phase_done",
            RoundEvent::EvalDone { .. } => "eval_done",
            RoundEvent::EarlyStopped { .. } => "early_stopped",
            RoundEvent::CheckpointSaved { .. } => "checkpoint_saved",
            RoundEvent::Resumed { .. } => "resumed",
            RoundEvent::RoundFinished { .. } => "round_finished",
            RoundEvent::RunFinished { .. } => "run_finished",
        }
    }

    /// Encodes the event as one flat JSON object (field order fixed, the
    /// `"event"` tag first).
    pub fn to_json(&self) -> Json {
        let tag = ("event", Json::from(self.kind()));
        match self {
            RoundEvent::RunStarted {
                algorithm,
                n_clients,
                max_rounds,
            } => obj([
                tag,
                ("algorithm", algorithm.as_str().into()),
                ("n_clients", (*n_clients).into()),
                ("max_rounds", (*max_rounds).into()),
            ]),
            RoundEvent::RoundStarted { round } => obj([tag, ("round", (*round).into())]),
            RoundEvent::LocalStepDone {
                client,
                epoch,
                loss,
                ce,
                ortho,
                cmd,
            } => obj([
                tag,
                ("client", (*client as u64).into()),
                ("epoch", (*epoch as u64).into()),
                ("loss", Json::Num(*loss)),
                ("ce", Json::Num(*ce)),
                ("ortho", Json::Num(*ortho)),
                ("cmd", Json::Num(*cmd)),
            ]),
            RoundEvent::FrameSent { kind, bytes } => {
                obj([tag, ("kind", (*kind).into()), ("bytes", (*bytes).into())])
            }
            RoundEvent::FrameDropped { kind, bytes } => {
                obj([tag, ("kind", (*kind).into()), ("bytes", (*bytes).into())])
            }
            RoundEvent::StatsRound1Done { participants } => {
                obj([tag, ("participants", (*participants).into())])
            }
            RoundEvent::StatsRound2Done { participants } => {
                obj([tag, ("participants", (*participants).into())])
            }
            RoundEvent::AggregationDone { participants } => {
                obj([tag, ("participants", (*participants).into())])
            }
            RoundEvent::PhaseDone { phase, micros } => obj([
                tag,
                ("phase", phase.name().into()),
                ("micros", (*micros).into()),
            ]),
            RoundEvent::EvalDone {
                round,
                val_acc,
                test_acc,
            } => obj([
                tag,
                ("round", (*round).into()),
                ("val_acc", Json::Num(*val_acc)),
                ("test_acc", Json::Num(*test_acc)),
            ]),
            RoundEvent::EarlyStopped { round } => obj([tag, ("round", (*round).into())]),
            RoundEvent::CheckpointSaved { round, path, bytes } => obj([
                tag,
                ("round", (*round).into()),
                ("path", path.as_str().into()),
                ("bytes", (*bytes).into()),
            ]),
            RoundEvent::Resumed { round } => obj([tag, ("round", (*round).into())]),
            RoundEvent::RoundFinished {
                round,
                uplink_bytes,
                downlink_bytes,
                dropped_messages,
            } => obj([
                tag,
                ("round", (*round).into()),
                ("uplink_bytes", (*uplink_bytes).into()),
                ("downlink_bytes", (*downlink_bytes).into()),
                ("dropped_messages", (*dropped_messages).into()),
            ]),
            RoundEvent::RunFinished {
                algorithm,
                test_acc,
                val_acc,
                best_round,
                rounds,
            } => obj([
                tag,
                ("algorithm", algorithm.as_str().into()),
                ("test_acc", Json::Num(*test_acc)),
                ("val_acc", Json::Num(*val_acc)),
                ("best_round", (*best_round).into()),
                ("rounds", (*rounds).into()),
            ]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(Phase::LocalTrain.name(), "local_train");
        assert_eq!(Phase::Comms.name(), "comms");
        assert_eq!(Phase::Aggregation.name(), "aggregation");
        assert_eq!(Phase::Eval.name(), "eval");
        assert_eq!(Phase::FoldOverlap.name(), "fold_overlap");
    }

    #[test]
    fn json_encoding_leads_with_the_event_tag() {
        let ev = RoundEvent::EvalDone {
            round: 3,
            val_acc: 0.5,
            test_acc: 0.25,
        };
        let json = ev.to_json();
        assert_eq!(
            json.get("event").and_then(|j| j.as_str()),
            Some("eval_done")
        );
        assert_eq!(json.get("round").and_then(|j| j.as_u64()), Some(3));
        assert_eq!(json.get("val_acc").and_then(|j| j.as_f64()), Some(0.5));
        // The tag must be the first field so `grep '"event":"eval_done"'`
        // style stream filters work on prefixes.
        assert!(json.to_string().starts_with("{\"event\":"));
    }

    #[test]
    fn every_variant_roundtrips_through_jsonio() {
        let events = vec![
            RoundEvent::RunStarted {
                algorithm: "FedOMD".into(),
                n_clients: 3,
                max_rounds: 10,
            },
            RoundEvent::RoundStarted { round: 0 },
            RoundEvent::LocalStepDone {
                client: 1,
                epoch: 0,
                loss: 1.25,
                ce: 1.0,
                ortho: 0.05,
                cmd: 0.2,
            },
            RoundEvent::FrameSent {
                kind: "WeightUpdate",
                bytes: 426,
            },
            RoundEvent::FrameDropped {
                kind: "StatsRound1",
                bytes: 66,
            },
            RoundEvent::StatsRound1Done { participants: 3 },
            RoundEvent::StatsRound2Done { participants: 2 },
            RoundEvent::AggregationDone { participants: 3 },
            RoundEvent::PhaseDone {
                phase: Phase::Comms,
                micros: 1234,
            },
            RoundEvent::PhaseDone {
                phase: Phase::FoldOverlap,
                micros: 56,
            },
            RoundEvent::EvalDone {
                round: 0,
                val_acc: 0.5,
                test_acc: 0.5,
            },
            RoundEvent::EarlyStopped { round: 7 },
            RoundEvent::CheckpointSaved {
                round: 4,
                path: "run.ckpt.json".into(),
                bytes: 2048,
            },
            RoundEvent::Resumed { round: 5 },
            RoundEvent::RoundFinished {
                round: 0,
                uplink_bytes: 100,
                downlink_bytes: 200,
                dropped_messages: 1,
            },
            RoundEvent::RunFinished {
                algorithm: "FedOMD".into(),
                test_acc: 0.5,
                val_acc: 0.6,
                best_round: 4,
                rounds: 8,
            },
        ];
        for ev in events {
            let line = ev.to_json().to_string();
            let parsed = Json::parse(&line).expect("event line must be valid JSON");
            assert_eq!(
                parsed.get("event").and_then(|j| j.as_str()),
                Some(ev.kind()),
                "{line}"
            );
        }
    }
}
