//! [`ObservedChannel`]: a transparent [`Channel`] wrapper that turns
//! wire activity into [`RoundEvent`]s.
//!
//! The wrapper delegates every call unchanged — byte counts, envelope
//! contents, and fault behaviour are exactly the inner channel's, which is
//! what keeps telemetry-on runs bit-identical to telemetry-off runs — and
//! buffers the events it derives instead of holding the observer itself,
//! so the run loop keeps a single `&mut` to its observer and drains the
//! buffer at phase boundaries with [`ObservedChannel::flush_into`].
//!
//! Drop detection is positional: an upload whose sender is missing from
//! the next `server_collect`, or a download whose addressee collects fewer
//! frames than were sent to it, is reported as [`RoundEvent::FrameDropped`]
//! with the *sent* frame's kind and size. This works for any `Channel`
//! impl (in-process or simulated) without the transport layer knowing
//! telemetry exists.

use fedomd_transport::{Channel, ChannelState, Envelope, NetStats};

use crate::event::RoundEvent;
use crate::observer::RoundObserver;

/// A `Channel` adapter emitting `FrameSent` / `FrameDropped` events.
pub struct ObservedChannel<'a> {
    inner: &'a mut dyn Channel,
    events: Vec<RoundEvent>,
    /// Uploads not yet matched against a `server_collect`: (sender, kind,
    /// frame bytes).
    pending_up: Vec<(u32, &'static str, u64)>,
    /// Downloads not yet matched against a `client_collect`: (addressee,
    /// kind, frame bytes).
    pending_down: Vec<(u32, &'static str, u64)>,
}

impl<'a> ObservedChannel<'a> {
    /// Wraps `inner`; events accumulate until flushed.
    pub fn new(inner: &'a mut dyn Channel) -> Self {
        Self {
            inner,
            events: Vec::new(),
            pending_up: Vec::new(),
            pending_down: Vec::new(),
        }
    }

    /// Drains the buffered events into `obs`, in wire order.
    pub fn flush_into(&mut self, obs: &mut dyn RoundObserver) {
        for ev in self.events.drain(..) {
            obs.on_event(&ev);
        }
    }

    /// Buffered events not yet flushed (test hook).
    pub fn pending_events(&self) -> &[RoundEvent] {
        &self.events
    }
}

impl Channel for ObservedChannel<'_> {
    fn upload(&mut self, env: Envelope) -> usize {
        let kind = env.payload.kind();
        let sender = env.sender;
        let bytes = self.inner.upload(env);
        self.events.push(RoundEvent::FrameSent {
            kind,
            bytes: bytes as u64,
        });
        self.pending_up.push((sender, kind, bytes as u64));
        bytes
    }

    fn server_collect(&mut self, round: u64) -> Vec<Envelope> {
        let envs = self.inner.server_collect(round);
        for (sender, kind, bytes) in self.pending_up.drain(..) {
            if !envs.iter().any(|e| e.sender == sender) {
                self.events.push(RoundEvent::FrameDropped { kind, bytes });
            }
        }
        envs
    }

    fn server_collect_some(&mut self, round: u64) -> Vec<Envelope> {
        let envs = self.inner.server_collect_some(round);
        // Same positional matching as `server_collect`. In-process round
        // loops pair every upload with an immediate collect, and the TCP
        // server never uploads through its own channel, so `pending_up`
        // holds at most the frames this very call is answering for.
        for (sender, kind, bytes) in self.pending_up.drain(..) {
            if !envs.iter().any(|e| e.sender == sender) {
                self.events.push(RoundEvent::FrameDropped { kind, bytes });
            }
        }
        envs
    }

    fn download(&mut self, to: u32, env: Envelope) -> usize {
        let kind = env.payload.kind();
        let bytes = self.inner.download(to, env);
        self.events.push(RoundEvent::FrameSent {
            kind,
            bytes: bytes as u64,
        });
        self.pending_down.push((to, kind, bytes as u64));
        bytes
    }

    fn download_many(&mut self, to: &[u32], env: Envelope) -> usize {
        let kind = env.payload.kind();
        let bytes = self.inner.download_many(to, env);
        // Same event stream a per-peer download loop would produce: one
        // `FrameSent` per addressee, in broadcast order.
        for &id in to {
            self.events.push(RoundEvent::FrameSent {
                kind,
                bytes: bytes as u64,
            });
            self.pending_down.push((id, kind, bytes as u64));
        }
        bytes
    }

    fn client_collect(&mut self, id: u32, round: u64) -> Vec<Envelope> {
        let envs = self.inner.client_collect(id, round);
        let mut mine = Vec::new();
        self.pending_down.retain(|&(to, kind, bytes)| {
            if to == id {
                mine.push((kind, bytes));
                false
            } else {
                true
            }
        });
        // Fewer arrivals than sends to this client ⇒ the tail went missing.
        for &(kind, bytes) in mine.iter().skip(envs.len()) {
            self.events.push(RoundEvent::FrameDropped { kind, bytes });
        }
        envs
    }

    fn awaited_peers(&self, round: u64) -> Option<usize> {
        self.inner.awaited_peers(round)
    }

    fn stats(&self) -> NetStats {
        self.inner.stats()
    }

    // Checkpoint state belongs to the wrapped transport: forwarding (rather
    // than taking the trait defaults) is what keeps a lossy channel's fault
    // stream resumable when the run is observed.
    fn export_state(&self) -> ChannelState {
        self.inner.export_state()
    }

    fn restore_state(&mut self, state: &ChannelState) {
        self.inner.restore_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::MemoryObserver;
    use fedomd_transport::{InProcChannel, Payload, SERVER_SENDER};

    fn weight_env(round: u64, sender: u32) -> Envelope {
        Envelope {
            round,
            sender,
            payload: Payload::WeightUpdate { params: Vec::new() },
        }
    }

    #[test]
    fn faultless_channel_reports_sends_and_no_drops() {
        let mut inner = InProcChannel::new();
        let mut chan = ObservedChannel::new(&mut inner);
        let b0 = chan.upload(weight_env(0, 0));
        let b1 = chan.upload(weight_env(0, 1));
        let got = chan.server_collect(0);
        assert_eq!(got.len(), 2);
        chan.download(0, weight_env(0, SERVER_SENDER));
        assert_eq!(chan.client_collect(0, 0).len(), 1);

        let mut mem = MemoryObserver::new();
        chan.flush_into(&mut mem);
        assert_eq!(mem.count("frame_sent"), 3);
        assert_eq!(mem.count("frame_dropped"), 0);
        assert_eq!(
            mem.events[0],
            RoundEvent::FrameSent {
                kind: "WeightUpdate",
                bytes: b0 as u64
            }
        );
        assert_eq!(
            mem.events[1],
            RoundEvent::FrameSent {
                kind: "WeightUpdate",
                bytes: b1 as u64
            }
        );
    }

    #[test]
    fn missing_sender_becomes_a_dropped_frame_event() {
        // A collect for round 1 won't see the round-0 upload: positionally
        // that upload is lost as far as this exchange is concerned.
        let mut inner = InProcChannel::new();
        let mut chan = ObservedChannel::new(&mut inner);
        let bytes = chan.upload(weight_env(0, 3));
        let got = chan.server_collect(1);
        assert!(got.is_empty());
        let mut mem = MemoryObserver::new();
        chan.flush_into(&mut mem);
        assert_eq!(mem.count("frame_dropped"), 1);
        assert!(mem.events.contains(&RoundEvent::FrameDropped {
            kind: "WeightUpdate",
            bytes: bytes as u64
        }));
    }

    #[test]
    fn byte_counts_pass_through_unchanged() {
        let mut plain = InProcChannel::new();
        let direct = plain.upload(weight_env(0, 0));
        let mut inner = InProcChannel::new();
        let mut chan = ObservedChannel::new(&mut inner);
        let wrapped = chan.upload(weight_env(0, 0));
        assert_eq!(direct, wrapped);
    }

    #[test]
    fn flush_empties_the_buffer() {
        let mut inner = InProcChannel::new();
        let mut chan = ObservedChannel::new(&mut inner);
        chan.upload(weight_env(0, 0));
        let mut mem = MemoryObserver::new();
        chan.flush_into(&mut mem);
        assert_eq!(mem.events.len(), 1);
        chan.flush_into(&mut mem);
        assert_eq!(mem.events.len(), 1, "second flush must be a no-op");
        assert!(chan.pending_events().is_empty());
    }
}
