//! The [`RoundObserver`] sink contract and the three shipped sinks.
//!
//! An observer is a synchronous callback on the training thread: the run
//! calls [`RoundObserver::on_event`] once per milestone, in a fixed,
//! deterministic order. Observers must not influence the run — they get
//! `&RoundEvent` and no way back into the trainer — which is what makes
//! the `NullObserver` golden test (telemetry on ≡ telemetry off,
//! bit-for-bit) possible.

use std::io::Write;
use std::path::Path;

use crate::event::RoundEvent;

/// A sink for round events.
pub trait RoundObserver {
    /// Receives one event. Called on the training thread; keep it cheap.
    fn on_event(&mut self, event: &RoundEvent);
}

/// The zero-cost default: drops every event.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl RoundObserver for NullObserver {
    fn on_event(&mut self, _event: &RoundEvent) {}
}

/// Collects every event in memory — the test and scripting sink.
#[derive(Debug, Default)]
pub struct MemoryObserver {
    /// Events in emission order.
    pub events: Vec<RoundEvent>,
}

impl MemoryObserver {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many events of `kind` were recorded.
    pub fn count(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.kind() == kind).count()
    }
}

impl RoundObserver for MemoryObserver {
    fn on_event(&mut self, event: &RoundEvent) {
        self.events.push(event.clone());
    }
}

/// Human-readable round lines on an arbitrary writer (stderr by default
/// via [`ConsoleObserver::stderr`]).
///
/// Prints one line per evaluated round plus run begin/end markers; frame
/// and step events only update internal per-round aggregates.
pub struct ConsoleObserver<W: Write> {
    out: W,
    round: u64,
    loss_sum: f64,
    loss_n: usize,
    round_frames: u64,
    round_drops: u64,
}

impl ConsoleObserver<std::io::Stderr> {
    /// A console observer writing to stderr (keeps stdout clean for the
    /// binaries' own tables).
    pub fn stderr() -> Self {
        Self::new(std::io::stderr())
    }
}

impl<W: Write> ConsoleObserver<W> {
    /// A console observer over any writer.
    pub fn new(out: W) -> Self {
        Self {
            out,
            round: 0,
            loss_sum: 0.0,
            loss_n: 0,
            round_frames: 0,
            round_drops: 0,
        }
    }
}

impl<W: Write> RoundObserver for ConsoleObserver<W> {
    fn on_event(&mut self, event: &RoundEvent) {
        match event {
            RoundEvent::RunStarted {
                algorithm,
                n_clients,
                max_rounds,
            } => {
                let _ = writeln!(
                    self.out,
                    "[telemetry] {algorithm}: {n_clients} clients, ≤{max_rounds} rounds"
                );
            }
            RoundEvent::RoundStarted { round } => {
                self.round = *round;
                self.loss_sum = 0.0;
                self.loss_n = 0;
                self.round_frames = 0;
                self.round_drops = 0;
            }
            RoundEvent::LocalStepDone { loss, .. } => {
                self.loss_sum += loss;
                self.loss_n += 1;
            }
            RoundEvent::FrameSent { .. } => self.round_frames += 1,
            RoundEvent::FrameDropped { .. } => self.round_drops += 1,
            RoundEvent::EvalDone {
                round,
                val_acc,
                test_acc,
            } => {
                let mean_loss = self.loss_sum / self.loss_n.max(1) as f64;
                let _ = writeln!(
                    self.out,
                    "[telemetry] round {round:>4} · loss {mean_loss:.4} · val {:5.2}% · \
                     test {:5.2}% · frames {} (dropped {})",
                    100.0 * val_acc,
                    100.0 * test_acc,
                    self.round_frames,
                    self.round_drops,
                );
            }
            RoundEvent::EarlyStopped { round } => {
                let _ = writeln!(self.out, "[telemetry] early stop at round {round}");
            }
            RoundEvent::RunFinished {
                algorithm,
                test_acc,
                best_round,
                rounds,
                ..
            } => {
                let _ = writeln!(
                    self.out,
                    "[telemetry] {algorithm} finished: test {:.2}% (best round {best_round}, \
                     {rounds} rounds run)",
                    100.0 * test_acc,
                );
            }
            _ => {}
        }
    }
}

/// One event per line as flat JSON, with a monotonically increasing
/// `"seq"` field stamped on every line so consumers can verify ordering
/// and detect truncation.
pub struct JsonlObserver<W: Write> {
    out: W,
    seq: u64,
}

impl JsonlObserver<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncates) `path` and streams events into it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::new(std::io::BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

impl<W: Write> JsonlObserver<W> {
    /// A JSONL observer over any writer.
    pub fn new(out: W) -> Self {
        Self { out, seq: 0 }
    }

    /// Unwraps the inner writer (flushing is the writer's business).
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> RoundObserver for JsonlObserver<W> {
    fn on_event(&mut self, event: &RoundEvent) {
        let mut json = event.to_json();
        if let fedomd_jsonio::Json::Obj(fields) = &mut json {
            fields.push(("seq".to_string(), fedomd_jsonio::Json::Num(self.seq as f64)));
        }
        self.seq += 1;
        let _ = writeln!(self.out, "{json}");
    }
}

/// Forwards every event to both observers, in order — e.g. a JSONL trace
/// plus console lines from one run.
pub struct TeeObserver<'a> {
    a: &'a mut dyn RoundObserver,
    b: &'a mut dyn RoundObserver,
}

impl<'a> TeeObserver<'a> {
    /// Tees `a` then `b`.
    pub fn new(a: &'a mut dyn RoundObserver, b: &'a mut dyn RoundObserver) -> Self {
        Self { a, b }
    }
}

impl RoundObserver for TeeObserver<'_> {
    fn on_event(&mut self, event: &RoundEvent) {
        self.a.on_event(event);
        self.b.on_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;
    use fedomd_jsonio::Json;

    fn sample_events() -> Vec<RoundEvent> {
        vec![
            RoundEvent::RunStarted {
                algorithm: "FedOMD".into(),
                n_clients: 2,
                max_rounds: 4,
            },
            RoundEvent::RoundStarted { round: 0 },
            RoundEvent::LocalStepDone {
                client: 0,
                epoch: 0,
                loss: 1.5,
                ce: 1.5,
                ortho: 0.0,
                cmd: 0.0,
            },
            RoundEvent::PhaseDone {
                phase: Phase::LocalTrain,
                micros: 10,
            },
            RoundEvent::EvalDone {
                round: 0,
                val_acc: 0.5,
                test_acc: 0.5,
            },
            RoundEvent::RoundFinished {
                round: 0,
                uplink_bytes: 10,
                downlink_bytes: 10,
                dropped_messages: 0,
            },
            RoundEvent::RunFinished {
                algorithm: "FedOMD".into(),
                test_acc: 0.5,
                val_acc: 0.5,
                best_round: 0,
                rounds: 1,
            },
        ]
    }

    #[test]
    fn jsonl_lines_parse_and_seq_is_monotonic() {
        let mut sink = JsonlObserver::new(Vec::new());
        for ev in sample_events() {
            sink.on_event(&ev);
        }
        let text = String::from_utf8(sink.into_inner()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), sample_events().len());
        for (i, line) in lines.iter().enumerate() {
            let json = Json::parse(line).expect("every line is standalone JSON");
            assert_eq!(
                json.get("seq").and_then(|j| j.as_u64()),
                Some(i as u64),
                "seq must count lines without gaps"
            );
        }
    }

    #[test]
    fn jsonl_preserves_emission_order() {
        let mut sink = JsonlObserver::new(Vec::new());
        let events = sample_events();
        for ev in &events {
            sink.on_event(ev);
        }
        let text = String::from_utf8(sink.into_inner()).expect("utf8");
        let kinds: Vec<String> = text
            .lines()
            .map(|l| {
                Json::parse(l)
                    .expect("json")
                    .get("event")
                    .and_then(|j| j.as_str())
                    .expect("event tag")
                    .to_string()
            })
            .collect();
        let expected: Vec<String> = events.iter().map(|e| e.kind().to_string()).collect();
        assert_eq!(kinds, expected);
        // And the lifecycle shape holds: started first, finished last.
        assert_eq!(kinds.first().map(String::as_str), Some("run_started"));
        assert_eq!(kinds.last().map(String::as_str), Some("run_finished"));
    }

    #[test]
    fn memory_observer_counts_by_kind() {
        let mut mem = MemoryObserver::new();
        for ev in sample_events() {
            mem.on_event(&ev);
        }
        assert_eq!(mem.count("local_step_done"), 1);
        assert_eq!(mem.count("run_finished"), 1);
        assert_eq!(mem.count("frame_dropped"), 0);
    }

    #[test]
    fn console_observer_prints_round_lines() {
        let mut con = ConsoleObserver::new(Vec::new());
        for ev in sample_events() {
            con.on_event(&ev);
        }
        let text = String::from_utf8(con.out).expect("utf8");
        assert!(text.contains("FedOMD: 2 clients"));
        assert!(text.contains("round    0"));
        assert!(text.contains("finished: test 50.00%"));
    }

    #[test]
    fn tee_forwards_to_both() {
        let mut a = MemoryObserver::new();
        let mut b = MemoryObserver::new();
        {
            let mut tee = TeeObserver::new(&mut a, &mut b);
            for ev in sample_events() {
                tee.on_event(&ev);
            }
        }
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.events, b.events);
    }
}
