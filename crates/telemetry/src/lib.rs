//! `fedomd-telemetry`: round-event observability for federated runs.
//!
//! Production FL systems treat per-round telemetry as the substrate that
//! straggler debugging, drop analysis, and convergence monitoring are
//! built on (FedScale's runtime metrics, Flower's event-driven API). This
//! crate is that substrate for the FedOMD workspace, in four pieces:
//!
//! * [`event`] — the [`RoundEvent`] taxonomy (run/round lifecycle, local
//!   steps with loss components, frame sends/drops, statistics-exchange
//!   milestones, phase wall-clock segments, evaluation, early stop) and
//!   its flat-JSON encoding.
//! * [`observer`] — the [`RoundObserver`] sink trait with the three
//!   shipped sinks: [`NullObserver`] (zero-cost default), a
//!   [`ConsoleObserver`] printing human round lines, and a
//!   [`JsonlObserver`] streaming one event per line (what
//!   `fedomd_run --telemetry <path>` writes). [`MemoryObserver`] and
//!   [`TeeObserver`] support tests and composition.
//! * [`observed`] — [`ObservedChannel`], the transparent transport
//!   wrapper that converts wire activity of *any* [`fedomd_transport`]
//!   channel into frame events without changing its behaviour.
//! * [`stopwatch`] — [`PhaseStopwatch`], one-shot phase timing that emits
//!   `PhaseDone` segments.
//!
//! The contract the training loops uphold (and tests pin): observers are
//! pure sinks, so a run with any observer is **bit-identical** in result
//! and byte accounting to the same run with [`NullObserver`].

#![forbid(unsafe_code)]

pub mod event;
pub mod observed;
pub mod observer;
pub mod stopwatch;

pub use event::{Phase, RoundEvent};
pub use observed::ObservedChannel;
pub use observer::{
    ConsoleObserver, JsonlObserver, MemoryObserver, NullObserver, RoundObserver, TeeObserver,
};
pub use stopwatch::PhaseStopwatch;
