//! Regenerates **Table 3**: per-model computational/communication cost.
//! Prints the paper's asymptotic expressions next to *measured* per-round
//! client / server / inference wall-clock time and traffic from an
//! instrumented short run (M = 3 parties on Cora at the chosen scale).

use fedomd_bench::{dataset_for, fed_cfg, table4_rows, train_cfg, HarnessOpts};
use fedomd_data::DatasetName;
use fedomd_federated::setup_federation;
use fedomd_metrics::{ExperimentRecord, Table};

/// The asymptotic rows exactly as the paper's Table 3 states them.
fn asymptotic(name: &str) -> (&'static str, &'static str, &'static str) {
    match name {
        "FedMLP" => ("O(nf²)", "O(N)", "O(nf²)"),
        "FedProx" => ("O(nf² + f²)", "O(N)", "O(nf²)"),
        "SCAFFOLD" => ("O(nf² + f²)", "O(N + Nf² + f²)", "O(nf²)"),
        "FedGCN" | "LocGCN" => ("O(kmf + nf²)", "O(N)", "O(kmf + nf²)"),
        "FedLIT" => ("O(kmf + nf²)", "O(N + Nf² + f)", "O(kmf + nf²)"),
        "FedSage+" => ("O(L(m+sg)f + L(n+sg)f²)", "O(N)", "O(L(m+sg)f + L(n+sg)f²)"),
        "FedOMD" => (
            "O(kmf + nf² + f² + n²f)",
            "O(N + N²f² + Nf)",
            "O(kmf + nf²)",
        ),
        _ => ("-", "-", "-"),
    }
}

fn main() {
    let mut opts = HarnessOpts::parse();
    // Timing wants a fixed small number of rounds, not early stopping.
    opts.quick = true;
    let seed = opts.seeds[0];
    let ds = dataset_for(DatasetName::Cora, opts.scale, seed);
    let clients = setup_federation(&ds, &fed_cfg(&opts, 3, 1.0, seed));
    let cfg = train_cfg(&opts, seed);

    let mut record = ExperimentRecord::new("table3", opts.scale.name(), &[seed]);
    let mut table = Table::new(&[
        "Model",
        "Client Time (asym)",
        "Server Time (asym)",
        "Inference (asym)",
        "client ms/round",
        "server ms/round",
        "infer ms/eval",
        "MB/round",
        "stats %",
    ]);

    println!(
        "Table 3 — asymptotic + measured costs (Cora, M=3, {} rounds, {} scale)\n",
        cfg.rounds,
        opts.scale.name()
    );
    for algo in table4_rows() {
        let r = algo.run(&clients, ds.n_classes, &cfg);
        let rounds = r.comms.rounds.max(1) as f64;
        let evals = r.history.len().max(1) as f64;
        let (ca, sa, ia) = asymptotic(&algo.name());
        let client_ms = r.timing.get("client").as_secs_f64() * 1000.0 / rounds;
        let server_ms = r.timing.get("server").as_secs_f64() * 1000.0 / rounds;
        let infer_ms = r.timing.get("inference").as_secs_f64() * 1000.0 / evals;
        let mb_round = r.comms.total_bytes() as f64 / rounds / 1e6;
        let stats_pct = 100.0 * r.comms.stats_fraction();
        table.row(vec![
            algo.name(),
            ca.into(),
            sa.into(),
            ia.into(),
            format!("{client_ms:.2}"),
            format!("{server_ms:.2}"),
            format!("{infer_ms:.2}"),
            format!("{mb_round:.3}"),
            format!("{stats_pct:.2}"),
        ]);
        record.push(&algo.name(), "client_ms_per_round", client_ms, 0.0);
        record.push(&algo.name(), "server_ms_per_round", server_ms, 0.0);
        record.push(&algo.name(), "inference_ms_per_eval", infer_ms, 0.0);
        record.push(&algo.name(), "mb_per_round", mb_round, 0.0);
        record.push(&algo.name(), "stats_pct_of_uplink", stats_pct, 0.0);
        eprintln!("  {} done", algo.name());
    }
    print!("{}", table.render());
    println!("\nn/m/f/N as in the paper; measured on this machine's rayon pool.");
    fedomd_bench::emit(&record, &opts);
}
