//! Regenerates **Table 5**: many-party scaling on Coauthor-CS with
//! M ∈ {20, 50}.

use fedomd_bench::{seeded_cell, table4_rows, HarnessOpts};
use fedomd_data::DatasetName;
use fedomd_metrics::{ExperimentRecord, Table};

const PARTIES: [usize; 2] = [20, 50];

fn main() {
    let opts = HarnessOpts::parse();
    let rows = table4_rows();
    let mut record = ExperimentRecord::new("table5", opts.scale.name(), &opts.seeds);

    println!(
        "Table 5 — Coauthor-CS accuracy ±std (%) at many parties, {} scale\n",
        opts.scale.name()
    );
    let mut table = Table::new(&["Model", "M=20", "M=50"]);
    for algo in &rows {
        let mut cells = vec![algo.name()];
        for &m in &PARTIES {
            let s = seeded_cell(algo, DatasetName::CoauthorCs, m, 1.0, &opts);
            record.push(&algo.name(), &format!("coauthor-cs/M={m}"), s.mean, s.std);
            cells.push(s.paper_cell());
            eprintln!("  [M={m}] {}: {}", algo.name(), s.paper_cell());
        }
        table.row(cells);
    }
    print!("{}", table.render());
    fedomd_bench::emit(&record, &opts);
}
