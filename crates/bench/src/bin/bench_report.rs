//! Aggregates criterion-stub JSONL output into the repo-level perf
//! trajectory file `BENCH_kernels.json`.
//!
//! The vendored criterion stub appends one JSON object per benchmark
//! (`{"label":…,"mean_ns":…,"min_ns":…,"median_ns":…,"iters":…}`) to the
//! file named by `CRITERION_JSON`; `median_ns` is optional so auxiliary
//! records (RSS probes and older captures) still parse. `scripts/bench.sh` runs the bench suites with that
//! set, then invokes this binary to fold the lines into a labelled run:
//!
//! ```text
//! bench_report --label pr4-after --jsonl /tmp/bench.jsonl \
//!     [--out BENCH_kernels.json] [--notes "free text"]
//! ```
//!
//! Runs are keyed by label: re-running with the same label replaces the
//! run in place, so the trajectory stays one entry per labelled state of
//! the kernels rather than an append-only log of every invocation.

use std::process::ExitCode;

use fedomd_jsonio::Json;

struct Args {
    label: String,
    jsonl: String,
    out: String,
    notes: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut label = None;
    let mut jsonl = None;
    let mut out = "BENCH_kernels.json".to_string();
    let mut notes = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--label" => label = Some(grab("--label")?),
            "--jsonl" => jsonl = Some(grab("--jsonl")?),
            "--out" => out = grab("--out")?,
            "--notes" => notes = Some(grab("--notes")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        label: label.ok_or("--label is required")?,
        jsonl: jsonl.ok_or("--jsonl is required")?,
        out,
        notes,
    })
}

/// Parses the stub's JSONL into `(bench_label, record)` pairs. Later
/// duplicates win, so re-run suites within one collection overwrite.
fn parse_jsonl(text: &str) -> Result<Vec<(String, Json)>, String> {
    let mut benches: Vec<(String, Json)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let label = doc
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing label", lineno + 1))?
            .to_string();
        let mut rec = Vec::new();
        for key in ["mean_ns", "min_ns", "iters"] {
            let v = doc
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("line {}: missing {key}", lineno + 1))?;
            rec.push((key.to_string(), Json::Num(v)));
        }
        // Optional: only the criterion stub's timing records carry a
        // median; auxiliary records (e.g. cohort_scale RSS probes) don't.
        if let Some(v) = doc.get("median_ns").and_then(Json::as_f64) {
            rec.push(("median_ns".to_string(), Json::Num(v)));
        }
        benches.retain(|(l, _)| *l != label);
        benches.push((label, Json::Obj(rec)));
    }
    if benches.is_empty() {
        return Err("no benchmark records found in JSONL input".into());
    }
    Ok(benches)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let text = std::fs::read_to_string(&args.jsonl)
        .map_err(|e| format!("cannot read {}: {e}", args.jsonl))?;
    let benches = parse_jsonl(&text)?;

    let mut runs: Vec<Json> = match std::fs::read_to_string(&args.out) {
        Ok(existing) => Json::parse(&existing)
            .map_err(|e| format!("cannot parse existing {}: {e}", args.out))?
            .get("runs")
            .and_then(Json::as_array)
            .map(<[Json]>::to_vec)
            .unwrap_or_default(),
        Err(_) => Vec::new(),
    };

    let mut run = vec![("label".to_string(), Json::Str(args.label.clone()))];
    if let Some(notes) = &args.notes {
        run.push(("notes".to_string(), Json::Str(notes.clone())));
    }
    run.push((
        "benches".to_string(),
        Json::Obj(benches.into_iter().collect()),
    ));
    let run = Json::Obj(run);

    match runs
        .iter_mut()
        .find(|r| r.get("label").and_then(Json::as_str) == Some(args.label.as_str()))
    {
        Some(slot) => *slot = run,
        None => runs.push(run),
    }

    let doc = Json::Obj(vec![
        (
            "schema".to_string(),
            Json::Str("fedomd-bench-trajectory/v1".to_string()),
        ),
        ("unit".to_string(), Json::Str("ns/iter".to_string())),
        ("runs".to_string(), Json::Arr(runs)),
    ]);
    let mut body = doc.to_pretty();
    body.push('\n');
    std::fs::write(&args.out, body).map_err(|e| format!("cannot write {}: {e}", args.out))?;
    println!("bench_report: wrote run '{}' to {}", args.label, args.out);
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_report: {e}");
            ExitCode::FAILURE
        }
    }
}
