//! Regenerates **Table 2**: dataset statistics. Generates each synthetic
//! dataset at the chosen scale and reports its measured statistics against
//! the paper's targets.

use fedomd_bench::{dataset_for, HarnessOpts, Scale};
use fedomd_data::{spec, ALL_PAPER};
use fedomd_metrics::{ExperimentRecord, Table};

fn main() {
    let opts = HarnessOpts::parse();
    let mut table = Table::new(&[
        "Dataset",
        "#Nodes",
        "#Edges",
        "#Classes",
        "#Features",
        "target edges",
        "homophily",
    ]);
    let mut record = ExperimentRecord::new("table2", opts.scale.name(), &opts.seeds);

    for name in ALL_PAPER {
        let ds = dataset_for(name, opts.scale, opts.seeds[0]);
        let target = match opts.scale {
            Scale::Mini => spec(name.mini()),
            Scale::Paper => spec(name),
        };
        let homophily = ds.graph.edge_homophily(&ds.labels);
        table.row(vec![
            ds.name.clone(),
            ds.n_nodes().to_string(),
            ds.n_edges().to_string(),
            ds.n_classes.to_string(),
            ds.n_features().to_string(),
            target.n_edges.to_string(),
            format!("{homophily:.2}"),
        ]);
        record.push(&ds.name, "nodes", ds.n_nodes() as f64, 0.0);
        record.push(&ds.name, "edges", ds.n_edges() as f64, 0.0);
        record.push(&ds.name, "classes", ds.n_classes as f64, 0.0);
        record.push(&ds.name, "features", ds.n_features() as f64, 0.0);
        record.push(&ds.name, "homophily", homophily, 0.0);
    }

    println!("Table 2 — dataset statistics ({} scale)", opts.scale.name());
    println!("splits: 1% train / 20% val / 20% test (paper Table 2 caption)\n");
    print!("{}", table.render());
    fedomd_bench::emit(&record, &opts);
}
