//! Regenerates **Figure 7**: the impact of the Louvain `resolution`
//! hyper-parameter (which controls how fragmented the party subgraphs are)
//! on FedOMD accuracy, for the four main datasets with 3 parties.

use fedomd_bench::{seeded_cell, Algo, HarnessOpts};
use fedomd_core::FedOmdConfig;
use fedomd_data::DatasetName;
use fedomd_metrics::{ExperimentRecord, Table};

const RESOLUTIONS: [f64; 6] = [0.5, 1.0, 2.0, 5.0, 20.0, 50.0];
const M: usize = 3;

fn main() {
    let opts = HarnessOpts::parse();
    let algo = Algo::FedOmd(FedOmdConfig::paper());
    let mut record = ExperimentRecord::new("fig7", opts.scale.name(), &opts.seeds);

    println!("Figure 7 — Louvain resolution sweep, FedOMD mean accuracy (%), M={M}\n");
    let mut header = vec!["Dataset".to_string()];
    header.extend(RESOLUTIONS.iter().map(|r| format!("res={r}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    for ds_name in [
        DatasetName::Cora,
        DatasetName::Citeseer,
        DatasetName::Computer,
        DatasetName::Photo,
    ] {
        let mut cells = vec![format!("{ds_name:?}")];
        for &res in &RESOLUTIONS {
            let s = seeded_cell(&algo, ds_name, M, res, &opts);
            record.push(
                &format!("{ds_name:?}"),
                &format!("res={res}"),
                s.mean,
                s.std,
            );
            cells.push(format!("{:.2}", s.mean));
            eprintln!("  [{ds_name:?}] res={res}: {:.2}%", s.mean);
        }
        table.row(cells);
    }
    print!("{}", table.render());
    fedomd_bench::emit(&record, &opts);
}
