//! Extension ablation (beyond the paper's Table 6): *which part of the
//! CMD constraint does the work?* Sweeps the Eq. 11 component knobs —
//! mean-term weight, constrained layer set, and highest moment order —
//! around the calibrated default. This is the experiment behind the
//! calibration notes in EXPERIMENTS.md.

use fedomd_bench::{seeded_cell, Algo, HarnessOpts};
use fedomd_core::FedOmdConfig;
use fedomd_data::DatasetName;
use fedomd_metrics::{ExperimentRecord, Table};

const M: usize = 3;

fn main() {
    let opts = HarnessOpts::parse();
    let base = FedOmdConfig::paper();
    let variants: Vec<(String, FedOmdConfig)> = vec![
        (
            "no CMD at all".into(),
            FedOmdConfig {
                use_cmd: false,
                ..base
            },
        ),
        (
            "mean_scale = 0 (shape only)".into(),
            FedOmdConfig {
                cmd_mean_scale: 0.0,
                ..base
            },
        ),
        ("mean_scale = 0.1 (default)".into(), base),
        (
            "mean_scale = 1 (strict Eq. 11)".into(),
            FedOmdConfig::strict_paper(),
        ),
        (
            "first hidden layer only".into(),
            FedOmdConfig {
                cmd_first_layer_only: true,
                ..base
            },
        ),
        (
            "moments up to order 2".into(),
            FedOmdConfig {
                max_moment: 2,
                ..base
            },
        ),
        (
            "moments up to order 3".into(),
            FedOmdConfig {
                max_moment: 3,
                ..base
            },
        ),
        ("moments up to order 5 (default)".into(), base),
        ("β = 1".into(), FedOmdConfig { beta: 1.0, ..base }),
        (
            "β = 100".into(),
            FedOmdConfig {
                beta: 100.0,
                ..base
            },
        ),
    ];

    let mut record = ExperimentRecord::new("ablation_cmd", opts.scale.name(), &opts.seeds);
    println!("CMD component ablation, mean accuracy ±std (%), M={M}\n");
    for ds_name in [DatasetName::Cora, DatasetName::Computer] {
        let mut table = Table::new(&["Variant", "accuracy"]);
        for (label, cfg) in &variants {
            let s = seeded_cell(&Algo::FedOmd(*cfg), ds_name, M, 1.0, &opts);
            record.push(label, &format!("{ds_name:?}"), s.mean, s.std);
            table.row(vec![label.clone(), s.paper_cell()]);
            eprintln!("  [{ds_name:?}] {label}: {}", s.paper_cell());
        }
        println!("## {ds_name:?}\n{}", table.render());
    }
    fedomd_bench::emit(&record, &opts);
}
