//! Regenerates **Table 7**: the hidden-layer depth sweep of FedOMD
//! (2..10 OrthoConv layers) on Computer and Photo versus the 2-layer
//! FedGCN — the over-smoothing-resistance claim.

use fedomd_bench::{seeded_cell, Algo, HarnessOpts};
use fedomd_core::FedOmdConfig;
use fedomd_data::DatasetName;
use fedomd_federated::baselines::Baseline;
use fedomd_metrics::{ExperimentRecord, Table};

const PARTIES: [usize; 4] = [3, 5, 7, 9];
const DEPTHS: [usize; 5] = [2, 4, 6, 8, 10];

fn main() {
    let opts = HarnessOpts::parse();
    let mut record = ExperimentRecord::new("table7", opts.scale.name(), &opts.seeds);

    println!(
        "Table 7 — depth sweep, accuracy ±std (%), {} scale\n",
        opts.scale.name()
    );
    for ds_name in [DatasetName::Computer, DatasetName::Photo] {
        let mut header = vec!["Model / depth".to_string()];
        header.extend(PARTIES.iter().map(|m| format!("M={m}")));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(&header_refs);

        for &depth in &DEPTHS {
            let cfg = FedOmdConfig {
                hidden_layers: depth,
                ..FedOmdConfig::paper()
            };
            let algo = Algo::FedOmd(cfg);
            let label = format!("FedOMD {depth}-hidden");
            let mut cells = vec![label.clone()];
            for &m in &PARTIES {
                let s = seeded_cell(&algo, ds_name, m, 1.0, &opts);
                record.push(&label, &format!("{ds_name:?}/M={m}"), s.mean, s.std);
                cells.push(s.paper_cell());
                eprintln!("  [{ds_name:?} M={m}] {label}: {}", s.paper_cell());
            }
            table.row(cells);
        }
        // Reference row: the 2-GCNConv FedGCN.
        let algo = Algo::Baseline(Baseline::FedGcn);
        let mut cells = vec!["FedGCN 2-GCNConv".to_string()];
        for &m in &PARTIES {
            let s = seeded_cell(&algo, ds_name, m, 1.0, &opts);
            record.push(
                "FedGCN 2-GCNConv",
                &format!("{ds_name:?}/M={m}"),
                s.mean,
                s.std,
            );
            cells.push(s.paper_cell());
        }
        table.row(cells);
        println!("## {ds_name:?}\n{}", table.render());
    }
    fedomd_bench::emit(&record, &opts);
}
