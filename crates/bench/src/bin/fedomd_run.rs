//! General-purpose CLI: run any algorithm on any dataset/party-count
//! combination and print accuracy, macro-F1, traffic, and timing.
//!
//! ```text
//! cargo run --release -p fedomd-bench --bin fedomd_run -- \
//!     --algo fedomd --dataset cora-mini --parties 5 --seed 0
//! cargo run --release -p fedomd-bench --bin fedomd_run -- --algo fedgcn --dataset photo-mini
//! cargo run --release -p fedomd-bench --bin fedomd_run -- \
//!     --algo fedomd --telemetry trace.jsonl --verbose
//! ```
//!
//! `--telemetry <path>` writes the full round-event stream as JSONL (one
//! event per line, see DESIGN.md §10); `--verbose` prints per-evaluation
//! round lines to stderr. Both are pure observers: attaching them does not
//! change any reported number.

use fedomd_core::{FedOmdConfig, FedRun, RunConfig};
use fedomd_data::{generate, spec, DatasetName};
use fedomd_federated::baselines::{run_baseline_observed, Baseline};
use fedomd_federated::helpers::predict;
use fedomd_federated::{setup_federation, FederationConfig, TrainConfig};
use fedomd_metrics::argmax_row;
use fedomd_telemetry::{ConsoleObserver, JsonlObserver, RoundObserver, TeeObserver};

struct Args {
    algo: String,
    dataset: DatasetName,
    parties: usize,
    seed: u64,
    rounds: Option<usize>,
    resolution: f64,
    telemetry: Option<String>,
    verbose: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: fedomd_run --algo <fedomd|fedmlp|fedprox|scaffold|locgcn|fedgcn|fedsage+|fedlit>\n\
         \x20                --dataset <name[-mini]> [--parties M] [--seed S]\n\
         \x20                [--rounds R] [--resolution RES]\n\
         \x20                [--telemetry PATH.jsonl] [--verbose]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut algo = "fedomd".to_string();
    let mut dataset = DatasetName::CoraMini;
    let mut parties = 3usize;
    let mut seed = 0u64;
    let mut rounds = None;
    let mut resolution = 1.0f64;
    let mut telemetry = None;
    let mut verbose = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--algo" => algo = value(),
            "--dataset" => {
                dataset = DatasetName::parse(&value()).unwrap_or_else(|| usage());
            }
            "--parties" => parties = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value().parse().unwrap_or_else(|_| usage()),
            "--rounds" => rounds = Some(value().parse().unwrap_or_else(|_| usage())),
            "--resolution" => resolution = value().parse().unwrap_or_else(|_| usage()),
            "--telemetry" => telemetry = Some(value()),
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    Args {
        algo,
        dataset,
        parties,
        seed,
        rounds,
        resolution,
        telemetry,
        verbose,
    }
}

fn main() {
    let args = parse_args();
    let ds = generate(&spec(args.dataset), args.seed);
    let is_mini = ds.name.ends_with("-mini");
    let mut fed = if is_mini {
        FederationConfig::mini(args.parties, args.seed)
    } else {
        FederationConfig::paper(args.parties, args.seed)
    };
    fed.resolution = args.resolution;
    let clients = setup_federation(&ds, &fed);
    let mut cfg = if is_mini {
        TrainConfig::mini(args.seed)
    } else {
        TrainConfig::paper(args.seed)
    };
    if let Some(r) = args.rounds {
        cfg.rounds = r;
        cfg.patience = r;
    }

    println!(
        "{} on {} · M={} · resolution {} · seed {}",
        args.algo, ds.name, args.parties, args.resolution, args.seed
    );
    let mut jsonl = args.telemetry.as_deref().map(|path| {
        JsonlObserver::create(path).unwrap_or_else(|e| {
            eprintln!("fedomd_run: cannot open telemetry file {path}: {e}");
            std::process::exit(2)
        })
    });
    let mut console = args.verbose.then(ConsoleObserver::stderr);
    let run = |obs: &mut dyn RoundObserver| {
        if args.algo.eq_ignore_ascii_case("fedomd") {
            FedRun::new(&clients, ds.n_classes)
                .config(RunConfig {
                    train: cfg.clone(),
                    omd: FedOmdConfig::paper(),
                })
                .observer(obs)
                .run()
        } else {
            let b = Baseline::parse(&args.algo).unwrap_or_else(|| usage());
            run_baseline_observed(b, &clients, ds.n_classes, &cfg, obs)
        }
    };
    let result = match (&mut jsonl, &mut console) {
        (Some(j), Some(c)) => run(&mut TeeObserver::new(j, c)),
        (Some(j), None) => run(j),
        (None, Some(c)) => run(c),
        (None, None) => run(&mut fedomd_telemetry::NullObserver),
    };
    drop(jsonl); // flush the JSONL buffer before reporting
    if let Some(path) = &args.telemetry {
        eprintln!("telemetry trace written to {path}");
    }

    // Macro-F1 of the *final* models is not retained by RunResult (it keeps
    // the best-val checkpoint accuracy); report the label-skew context via
    // a fresh FedOMD-free local majority baseline instead: the fraction a
    // majority-class predictor would score on each party's test set.
    let mut majority_correct = 0usize;
    let mut test_total = 0usize;
    for c in &clients {
        let mut counts = vec![0usize; ds.n_classes];
        for &i in &c.splits.train {
            counts[c.labels[i]] += 1;
        }
        let majority = argmax_row(&counts.iter().map(|&x| x as f32).collect::<Vec<_>>());
        majority_correct += c
            .splits
            .test
            .iter()
            .filter(|&&i| c.labels[i] == majority)
            .count();
        test_total += c.splits.test.len();
    }
    let _ = predict; // re-exported for downstream scripting via this crate

    println!("  test accuracy        : {:.2}%", 100.0 * result.test_acc);
    println!("  best round           : {}", result.best_round);
    println!(
        "  local-majority floor : {:.2}%",
        100.0 * majority_correct as f64 / test_total.max(1) as f64
    );
    println!("  rounds run           : {}", result.comms.rounds);
    println!(
        "  uplink               : {:.2} MB",
        result.comms.uplink_bytes as f64 / 1e6
    );
    println!(
        "  stats share          : {:.3}%",
        100.0 * result.comms.stats_fraction()
    );
    for (bucket, d) in result.timing.buckets() {
        println!("  time[{bucket}]         : {:.1} ms", d.as_secs_f64() * 1e3);
    }
}
