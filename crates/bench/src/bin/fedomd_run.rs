//! General-purpose CLI: run any algorithm on any dataset/party-count
//! combination and print accuracy, macro-F1, traffic, and timing.
//!
//! ```text
//! cargo run --release -p fedomd-bench --bin fedomd_run -- \
//!     --algo fedomd --dataset cora-mini --parties 5 --seed 0
//! cargo run --release -p fedomd-bench --bin fedomd_run -- --algo fedgcn --dataset photo-mini
//! cargo run --release -p fedomd-bench --bin fedomd_run -- \
//!     --algo fedomd --telemetry trace.jsonl --verbose
//! ```
//!
//! `--telemetry <path>` writes the full round-event stream as JSONL (one
//! event per line, see DESIGN.md §10); `--verbose` prints per-evaluation
//! round lines to stderr. Both are pure observers: attaching them does not
//! change any reported number.
//!
//! `--checkpoint <path>` snapshots the full run state to `path` every
//! `--checkpoint-every N` rounds (default 1); `--resume <path>` picks a
//! killed run back up from its latest snapshot, bit-identical to the
//! uninterrupted run (DESIGN.md §11). Supported for FedOMD and the
//! FedAvg-family baselines (fedmlp, fedprox, locgcn, fedgcn); the bespoke
//! loops (scaffold, fedsage+, fedlit) reject the flags.

use fedomd_core::{FedOmdConfig, FedRun, RunConfig};
use fedomd_data::{generate, spec, DatasetName};
use fedomd_federated::baselines::{run_baseline_observed, Baseline};
use fedomd_federated::helpers::predict;
use fedomd_federated::{setup_federation, FederationConfig, TrainConfig};
use fedomd_metrics::argmax_row;
use fedomd_telemetry::{ConsoleObserver, JsonlObserver, RoundObserver, TeeObserver};

struct Args {
    algo: String,
    dataset: DatasetName,
    parties: usize,
    seed: u64,
    rounds: Option<usize>,
    resolution: f64,
    telemetry: Option<String>,
    verbose: bool,
    checkpoint: Option<String>,
    checkpoint_every: usize,
    resume: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: fedomd_run --algo <fedomd|fedmlp|fedprox|scaffold|locgcn|fedgcn|fedsage+|fedlit>\n\
         \x20                --dataset <name[-mini]> [--parties M] [--seed S]\n\
         \x20                [--rounds R] [--resolution RES]\n\
         \x20                [--telemetry PATH.jsonl] [--verbose]\n\
         \x20                [--checkpoint PATH.json] [--checkpoint-every N] [--resume PATH.json]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut algo = "fedomd".to_string();
    let mut dataset = DatasetName::CoraMini;
    let mut parties = 3usize;
    let mut seed = 0u64;
    let mut rounds = None;
    let mut resolution = 1.0f64;
    let mut telemetry = None;
    let mut verbose = false;
    let mut checkpoint = None;
    let mut checkpoint_every = 1usize;
    let mut resume = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--algo" => algo = value(),
            "--dataset" => {
                dataset = DatasetName::parse(&value()).unwrap_or_else(|| usage());
            }
            "--parties" => parties = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value().parse().unwrap_or_else(|_| usage()),
            "--rounds" => rounds = Some(value().parse().unwrap_or_else(|_| usage())),
            "--resolution" => resolution = value().parse().unwrap_or_else(|_| usage()),
            "--telemetry" => telemetry = Some(value()),
            "--verbose" | "-v" => verbose = true,
            "--checkpoint" => checkpoint = Some(value()),
            "--checkpoint-every" => {
                checkpoint_every = value().parse().unwrap_or_else(|_| usage());
            }
            "--resume" => resume = Some(value()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    Args {
        algo,
        dataset,
        parties,
        seed,
        rounds,
        resolution,
        telemetry,
        verbose,
        checkpoint,
        checkpoint_every,
        resume,
    }
}

fn main() {
    let args = parse_args();
    let ds = generate(&spec(args.dataset), args.seed);
    let is_mini = ds.name.ends_with("-mini");
    let mut fed = if is_mini {
        FederationConfig::mini(args.parties, args.seed)
    } else {
        FederationConfig::paper(args.parties, args.seed)
    };
    fed.resolution = args.resolution;
    let clients = setup_federation(&ds, &fed);
    let mut cfg = if is_mini {
        TrainConfig::mini(args.seed)
    } else {
        TrainConfig::paper(args.seed)
    };
    if let Some(r) = args.rounds {
        cfg.rounds = r;
        cfg.patience = r;
    }

    println!(
        "{} on {} · M={} · resolution {} · seed {}",
        args.algo, ds.name, args.parties, args.resolution, args.seed
    );
    let mut jsonl = args.telemetry.as_deref().map(|path| {
        JsonlObserver::create(path).unwrap_or_else(|e| {
            eprintln!("fedomd_run: cannot open telemetry file {path}: {e}");
            std::process::exit(2)
        })
    });
    let mut console = args.verbose.then(ConsoleObserver::stderr);
    let baseline = if args.algo.eq_ignore_ascii_case("fedomd") {
        None
    } else {
        Some(Baseline::parse(&args.algo).unwrap_or_else(|| usage()))
    };
    let generic = baseline.and_then(Baseline::generic_opts);
    if (args.checkpoint.is_some() || args.resume.is_some())
        && baseline.is_some()
        && generic.is_none()
    {
        eprintln!(
            "fedomd_run: --checkpoint/--resume are not supported for {}: its bespoke \
             loop keeps state the run checkpoint does not capture",
            args.algo
        );
        std::process::exit(2);
    }
    let run = |obs: &mut dyn RoundObserver| {
        // The bespoke loops (SCAFFOLD, FedSage+, FedLIT) do not run on the
        // shared engine; everything else routes through FedRun so the
        // checkpoint flags apply uniformly.
        if let (Some(b), None) = (baseline, generic) {
            return run_baseline_observed(b, &clients, ds.n_classes, &cfg, obs);
        }
        let train = baseline.map_or_else(|| cfg.clone(), |b| b.adjust_config(&cfg));
        let mut fed_run = FedRun::new(&clients, ds.n_classes)
            .config(RunConfig {
                train,
                omd: FedOmdConfig::paper(),
            })
            .observer(obs);
        if let Some(opts) = generic {
            fed_run = fed_run.generic(opts);
        }
        if let Some(path) = &args.checkpoint {
            fed_run = fed_run.checkpoint_every(args.checkpoint_every, path);
        }
        if let Some(path) = &args.resume {
            fed_run = fed_run.resume_from(path).unwrap_or_else(|e| {
                eprintln!("fedomd_run: cannot resume from {path}: {e}");
                std::process::exit(2)
            });
        }
        fed_run.run()
    };
    let result = match (&mut jsonl, &mut console) {
        (Some(j), Some(c)) => run(&mut TeeObserver::new(j, c)),
        (Some(j), None) => run(j),
        (None, Some(c)) => run(c),
        (None, None) => run(&mut fedomd_telemetry::NullObserver),
    };
    drop(jsonl); // flush the JSONL buffer before reporting
    if let Some(path) = &args.telemetry {
        eprintln!("telemetry trace written to {path}");
    }

    // Macro-F1 of the *final* models is not retained by RunResult (it keeps
    // the best-val checkpoint accuracy); report the label-skew context via
    // a fresh FedOMD-free local majority baseline instead: the fraction a
    // majority-class predictor would score on each party's test set.
    let mut majority_correct = 0usize;
    let mut test_total = 0usize;
    for c in &clients {
        let mut counts = vec![0usize; ds.n_classes];
        for &i in &c.splits.train {
            counts[c.labels[i]] += 1;
        }
        let majority = argmax_row(&counts.iter().map(|&x| x as f32).collect::<Vec<_>>());
        majority_correct += c
            .splits
            .test
            .iter()
            .filter(|&&i| c.labels[i] == majority)
            .count();
        test_total += c.splits.test.len();
    }
    let _ = predict; // re-exported for downstream scripting via this crate

    println!("  test accuracy        : {:.2}%", 100.0 * result.test_acc);
    println!("  best round           : {}", result.best_round);
    println!(
        "  local-majority floor : {:.2}%",
        100.0 * majority_correct as f64 / test_total.max(1) as f64
    );
    println!("  rounds run           : {}", result.comms.rounds);
    println!(
        "  uplink               : {:.2} MB",
        result.comms.uplink_bytes as f64 / 1e6
    );
    println!(
        "  stats share          : {:.3}%",
        100.0 * result.comms.stats_fraction()
    );
    for (bucket, d) in result.timing.buckets() {
        println!("  time[{bucket}]         : {:.1} ms", d.as_secs_f64() * 1e3);
    }
}
