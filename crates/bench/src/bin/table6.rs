//! Regenerates **Table 6**: the ablation of FedOMD's two mechanisms
//! (orthogonalisation × CMD) on Cora and Citeseer, M ∈ {3, 5, 7, 9}.

use fedomd_bench::{seeded_cell, Algo, HarnessOpts};
use fedomd_core::FedOmdConfig;
use fedomd_data::DatasetName;
use fedomd_metrics::{ExperimentRecord, Table};

const PARTIES: [usize; 4] = [3, 5, 7, 9];

fn main() {
    let opts = HarnessOpts::parse();
    let variants: [(&str, FedOmdConfig); 3] = [
        ("Ortho ✓ / CMD ✗", FedOmdConfig::ortho_only()),
        ("Ortho ✗ / CMD ✓", FedOmdConfig::cmd_only()),
        ("Ortho ✓ / CMD ✓", FedOmdConfig::paper()),
    ];
    let mut record = ExperimentRecord::new("table6", opts.scale.name(), &opts.seeds);

    println!(
        "Table 6 — ablation, accuracy ±std (%), {} scale\n",
        opts.scale.name()
    );
    for ds_name in [DatasetName::Cora, DatasetName::Citeseer] {
        let mut header = vec!["Variant".to_string()];
        header.extend(PARTIES.iter().map(|m| format!("M={m}")));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(&header_refs);

        for (label, cfg) in &variants {
            let algo = Algo::FedOmd(*cfg);
            let mut cells = vec![label.to_string()];
            for &m in &PARTIES {
                let s = seeded_cell(&algo, ds_name, m, 1.0, &opts);
                record.push(label, &format!("{ds_name:?}/M={m}"), s.mean, s.std);
                cells.push(s.paper_cell());
                eprintln!("  [{ds_name:?} M={m}] {label}: {}", s.paper_cell());
            }
            table.row(cells);
        }
        println!("## {ds_name:?}\n{}", table.render());
    }
    fedomd_bench::emit(&record, &opts);
}
