//! Regenerates **Figure 4** (and the premise of Figure 1): the non-i.i.d.
//! label distribution across parties after the Louvain cut. Prints the
//! party × class count matrix the paper renders as a bubble plot, plus a
//! per-party feature-mean divergence to show feature non-i.i.d.-ness.

use fedomd_bench::{dataset_for, fed_cfg, HarnessOpts};
use fedomd_data::ALL_PAPER;
use fedomd_federated::setup_federation;
use fedomd_metrics::{ExperimentRecord, Table};
use fedomd_tensor::stats::l2_distance;

const M: usize = 5;

fn main() {
    let opts = HarnessOpts::parse();
    let seed = opts.seeds[0];
    let mut record = ExperimentRecord::new("fig4", opts.scale.name(), &[seed]);

    println!("Figure 4 — per-party label counts after the Louvain cut (M={M})\n");
    for name in ALL_PAPER {
        let ds = dataset_for(name, opts.scale, seed);
        let clients = setup_federation(&ds, &fed_cfg(&opts, M, 1.0, seed));

        let mut header = vec!["party".to_string()];
        header.extend((0..ds.n_classes).map(|c| format!("c{c}")));
        header.push("nodes".into());
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(&header_refs);

        let global_mean = fedomd_tensor::column_means(&ds.features);
        for (p, client) in clients.iter().enumerate() {
            let mut hist = vec![0usize; ds.n_classes];
            for &l in &client.labels {
                hist[l] += 1;
            }
            let mut cells = vec![format!("P{p}")];
            cells.extend(hist.iter().map(|h| h.to_string()));
            cells.push(client.n_nodes().to_string());
            table.row(cells);
            for (c, &h) in hist.iter().enumerate() {
                record.push(
                    &format!("{}/P{p}", ds.name),
                    &format!("c{c}"),
                    h as f64,
                    0.0,
                );
            }
            // Feature non-i.i.d.: distance of party feature mean from global.
            let pm = fedomd_tensor::column_means(&client.input.x);
            let d = l2_distance(&pm, &global_mean) as f64;
            record.push(&format!("{}/P{p}", ds.name), "feat_mean_dist", d, 0.0);
        }
        println!("## {}\n{}", ds.name, table.render());

        let skew = fedomd_federated::heterogeneity::label_skew(&clients, ds.n_classes);
        let shift = fedomd_federated::heterogeneity::feature_shift(&clients, 5);
        let edge_loss = fedomd_federated::heterogeneity::cross_edge_loss(&clients, ds.n_edges());
        println!(
            "label skew (TV) {skew:.3} · feature shift (CMD) {shift:.4} · edges lost to cut {:.1}%\n",
            100.0 * edge_loss
        );
        record.push(&ds.name, "label_skew_tv", skew, 0.0);
        record.push(&ds.name, "feature_shift_cmd", shift, 0.0);
        record.push(&ds.name, "edge_loss", edge_loss, 0.0);
    }
    fedomd_bench::emit(&record, &opts);
}
