//! Regenerates **Figure 6**: sensitivity of FedOMD to the loss weights
//! (α, β) on Cora and Computer with 3 parties — a grid of mean accuracies.

use fedomd_bench::{seeded_cell, Algo, HarnessOpts};
use fedomd_core::FedOmdConfig;
use fedomd_data::DatasetName;
use fedomd_metrics::{ExperimentRecord, Table};

const ALPHAS: [f32; 4] = [5e-5, 5e-4, 5e-3, 5e-2];
const BETAS: [f32; 4] = [0.1, 1.0, 10.0, 100.0];
const M: usize = 3;

fn main() {
    let opts = HarnessOpts::parse();
    let mut record = ExperimentRecord::new("fig6", opts.scale.name(), &opts.seeds);

    println!("Figure 6 — (α, β) sensitivity grid, mean accuracy (%), M={M}\n");
    for ds_name in [DatasetName::Cora, DatasetName::Computer] {
        let mut header = vec!["α \\ β".to_string()];
        header.extend(BETAS.iter().map(|b| format!("β={b}")));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(&header_refs);

        for &alpha in &ALPHAS {
            let mut cells = vec![format!("α={alpha}")];
            for &beta in &BETAS {
                let cfg = FedOmdConfig {
                    alpha,
                    beta,
                    ..FedOmdConfig::paper()
                };
                let s = seeded_cell(&Algo::FedOmd(cfg), ds_name, M, 1.0, &opts);
                record.push(
                    &format!("alpha={alpha}"),
                    &format!("{ds_name:?}/beta={beta}"),
                    s.mean,
                    s.std,
                );
                cells.push(format!("{:.2}", s.mean));
                eprintln!("  [{ds_name:?}] α={alpha} β={beta}: {:.2}%", s.mean);
            }
            table.row(cells);
        }
        println!("## {ds_name:?}\n{}", table.render());
    }
    fedomd_bench::emit(&record, &opts);
}
