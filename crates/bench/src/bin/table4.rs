//! Regenerates **Table 4**: node-classification accuracy of the seven
//! baselines and FedOMD on Cora / Citeseer / Computer / Photo with party
//! counts M ∈ {3, 5, 7, 9}, averaged over seeds (the paper uses 5).

use fedomd_bench::{seeded_cell, table4_rows, HarnessOpts};
use fedomd_data::DatasetName;
use fedomd_metrics::{ExperimentRecord, Table};

const PARTIES: [usize; 4] = [3, 5, 7, 9];
const DATASETS: [DatasetName; 4] = [
    DatasetName::Cora,
    DatasetName::Citeseer,
    DatasetName::Computer,
    DatasetName::Photo,
];

fn main() {
    let opts = HarnessOpts::parse();
    let rows = table4_rows();
    let mut record = ExperimentRecord::new("table4", opts.scale.name(), &opts.seeds);

    println!(
        "Table 4 — accuracy ±std (%), {} scale, {} seed(s)\n",
        opts.scale.name(),
        opts.seeds.len()
    );
    for ds_name in DATASETS {
        let mut header = vec!["Model".to_string()];
        header.extend(PARTIES.iter().map(|m| format!("M={m}")));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(&header_refs);

        for algo in &rows {
            let mut cells = vec![algo.name()];
            for &m in &PARTIES {
                let s = seeded_cell(algo, ds_name, m, 1.0, &opts);
                record.push(&algo.name(), &format!("{ds_name:?}/M={m}"), s.mean, s.std);
                cells.push(s.paper_cell());
                eprintln!("  [{ds_name:?} M={m}] {}: {}", algo.name(), s.paper_cell());
            }
            table.row(cells);
        }
        println!("## {ds_name:?}\n{}", table.render());
    }
    fedomd_bench::emit(&record, &opts);
}
