//! Regenerates **Figure 5**: average test accuracy versus communication
//! round on Cora with 5 parties, for every algorithm. Emits one CSV-style
//! series per algorithm (round, test accuracy).

use fedomd_bench::{dataset_for, fed_cfg, table4_rows, train_cfg, HarnessOpts};
use fedomd_data::DatasetName;
use fedomd_federated::setup_federation;
use fedomd_metrics::ExperimentRecord;

const M: usize = 5;

fn main() {
    let opts = HarnessOpts::parse();
    let seed = opts.seeds[0];
    let ds = dataset_for(DatasetName::Cora, opts.scale, seed);
    let clients = setup_federation(&ds, &fed_cfg(&opts, M, 1.0, seed));
    let mut cfg = train_cfg(&opts, seed);
    // Convergence curves want the full schedule, not early stopping.
    cfg.patience = cfg.rounds;

    let mut record = ExperimentRecord::new("fig5", opts.scale.name(), &[seed]);
    println!("Figure 5 — test accuracy vs communication round (Cora, M={M})\n");
    println!("algorithm,round,test_acc_pct");
    for algo in table4_rows() {
        let r = algo.run(&clients, ds.n_classes, &cfg);
        for h in &r.history {
            println!("{},{},{:.2}", algo.name(), h.round, 100.0 * h.test_acc);
            record.push(
                &algo.name(),
                &format!("round{}", h.round),
                100.0 * h.test_acc,
                0.0,
            );
        }
        eprintln!(
            "  {}: best {:.2}% @ round {}",
            algo.name(),
            100.0 * r.test_acc,
            r.best_round
        );
    }
    fedomd_bench::emit(&record, &opts);
}
