//! Shared harness for the bench binaries that regenerate every table and
//! figure of the paper (see DESIGN.md §5 for the experiment index).
//!
//! Every binary accepts:
//!
//! * `--scale mini|paper` — mini (default) uses the ~10× smaller synthetic
//!   datasets and shorter training; paper uses Table 2-sized datasets and
//!   the paper's 1000-round/patience-200 schedule.
//! * `--seeds N` — number of seeds to average (default 3 mini / 5 paper).
//! * `--json PATH` — also write the machine-readable
//!   [`fedomd_metrics::ExperimentRecord`].
//! * `--quick` — clamp rounds to a handful (CI smoke mode).

use std::path::PathBuf;

use fedomd_core::{FedOmdConfig, FedRun};
use fedomd_data::{generate, spec, Dataset, DatasetName};
use fedomd_federated::baselines::{run_baseline, Baseline};
use fedomd_federated::{setup_federation, ClientData, FederationConfig, RunResult, TrainConfig};
use fedomd_metrics::{mean_std, ExperimentRecord, Summary};

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// ~10× smaller datasets, short schedule (default).
    Mini,
    /// Table 2-sized datasets, the paper's schedule.
    Paper,
}

impl Scale {
    /// Lowercase name for records.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Mini => "mini",
            Scale::Paper => "paper",
        }
    }
}

/// Parsed command-line options.
#[derive(Clone, Debug)]
pub struct HarnessOpts {
    pub scale: Scale,
    pub seeds: Vec<u64>,
    pub json: Option<PathBuf>,
    pub quick: bool,
}

impl HarnessOpts {
    /// Parses `std::env::args`, panicking with a usage message on bad input.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument iterator (testable).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut scale = Scale::Mini;
        let mut n_seeds: Option<usize> = None;
        let mut json = None;
        let mut quick = false;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    scale = match v.as_str() {
                        "mini" => Scale::Mini,
                        "paper" => Scale::Paper,
                        other => panic!("unknown scale {other:?} (use mini|paper)"),
                    };
                }
                "--seeds" => {
                    let v = it.next().expect("--seeds needs a value");
                    n_seeds = Some(v.parse().expect("--seeds needs an integer"));
                }
                "--json" => {
                    json = Some(PathBuf::from(it.next().expect("--json needs a path")));
                }
                "--quick" => quick = true,
                other => panic!("unknown argument {other:?}"),
            }
        }
        let default_seeds = match scale {
            Scale::Mini => 3,
            Scale::Paper => 5, // the paper averages 5 runs
        };
        let seeds: Vec<u64> = (0..n_seeds.unwrap_or(default_seeds) as u64).collect();
        Self {
            scale,
            seeds,
            json,
            quick,
        }
    }
}

/// Loads the dataset for a paper name at the requested scale.
pub fn dataset_for(name: DatasetName, scale: Scale, seed: u64) -> Dataset {
    let name = match scale {
        Scale::Mini => name.mini(),
        Scale::Paper => name,
    };
    generate(&spec(name), seed)
}

/// The training schedule for a scale.
pub fn train_cfg(opts: &HarnessOpts, seed: u64) -> TrainConfig {
    let mut cfg = match opts.scale {
        Scale::Mini => TrainConfig::mini(seed),
        Scale::Paper => TrainConfig::paper(seed),
    };
    if opts.quick {
        cfg.rounds = cfg.rounds.min(8);
        cfg.patience = cfg.rounds;
        cfg.eval_every = 2;
    }
    cfg
}

/// An algorithm the tables compare: a baseline or FedOMD itself.
#[derive(Clone, Copy, Debug)]
pub enum Algo {
    Baseline(Baseline),
    FedOmd(FedOmdConfig),
}

/// The eight rows of the paper's Table 4 in order.
pub fn table4_rows() -> Vec<Algo> {
    let mut rows: Vec<Algo> = fedomd_federated::baselines::ALL_BASELINES
        .into_iter()
        .map(Algo::Baseline)
        .collect();
    rows.push(Algo::FedOmd(FedOmdConfig::paper()));
    rows
}

impl Algo {
    /// Table row label.
    pub fn name(&self) -> String {
        match self {
            Algo::Baseline(b) => b.name().to_string(),
            Algo::FedOmd(c) => match (c.use_ortho, c.use_cmd) {
                (true, true) => "FedOMD".to_string(),
                (true, false) => "FedOMD (ortho only)".to_string(),
                (false, true) => "FedOMD (CMD only)".to_string(),
                (false, false) => "FedOMD (neither)".to_string(),
            },
        }
    }

    /// Runs the algorithm on a prepared federation.
    pub fn run(&self, clients: &[ClientData], n_classes: usize, cfg: &TrainConfig) -> RunResult {
        match self {
            Algo::Baseline(b) => run_baseline(*b, clients, n_classes, cfg),
            Algo::FedOmd(c) => FedRun::new(clients, n_classes)
                .train(cfg.clone())
                .omd(*c)
                .run(),
        }
    }
}

/// The federation cut for a scale: the paper's 1 % label rate at paper
/// scale, the scale-adjusted 5 % at mini scale (see `SplitRatios::mini`).
pub fn fed_cfg(opts: &HarnessOpts, m: usize, resolution: f64, seed: u64) -> FederationConfig {
    let ratios = match opts.scale {
        Scale::Mini => fedomd_graph::SplitRatios::mini(),
        Scale::Paper => fedomd_graph::SplitRatios::paper(),
    };
    FederationConfig {
        n_parties: m,
        resolution,
        ratios,
        seed,
    }
}

/// Runs `algo` across all seeds on `(dataset, m, resolution)` and returns
/// the accuracy summary in percent.
pub fn seeded_cell(
    algo: &Algo,
    name: DatasetName,
    m: usize,
    resolution: f64,
    opts: &HarnessOpts,
) -> Summary {
    let accs: Vec<f64> = opts
        .seeds
        .iter()
        .map(|&seed| {
            let ds = dataset_for(name, opts.scale, seed);
            let clients = setup_federation(&ds, &fed_cfg(opts, m, resolution, seed));
            let cfg = train_cfg(opts, seed);
            100.0 * algo.run(&clients, ds.n_classes, &cfg).test_acc
        })
        .collect();
    mean_std(&accs)
}

/// Writes the record to `--json` if requested and always prints a pointer.
pub fn emit(record: &ExperimentRecord, opts: &HarnessOpts) {
    if let Some(path) = &opts.json {
        std::fs::write(path, record.to_json()).expect("write json record");
        println!("\n[json written to {}]", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> HarnessOpts {
        HarnessOpts::from_args(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn default_opts() {
        let o = args(&[]);
        assert_eq!(o.scale, Scale::Mini);
        assert_eq!(o.seeds, vec![0, 1, 2]);
        assert!(o.json.is_none());
        assert!(!o.quick);
    }

    #[test]
    fn paper_scale_uses_five_seeds() {
        let o = args(&["--scale", "paper"]);
        assert_eq!(o.scale, Scale::Paper);
        assert_eq!(o.seeds.len(), 5);
    }

    #[test]
    fn explicit_flags() {
        let o = args(&["--seeds", "2", "--json", "/tmp/x.json", "--quick"]);
        assert_eq!(o.seeds, vec![0, 1]);
        assert!(o.quick);
        assert_eq!(o.json.as_deref(), Some(std::path::Path::new("/tmp/x.json")));
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_rejected() {
        let _ = args(&["--nope"]);
    }

    #[test]
    fn table4_has_eight_rows_ending_in_fedomd() {
        let rows = table4_rows();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows.last().expect("non-empty").name(), "FedOMD");
    }

    #[test]
    fn quick_cfg_clamps_rounds() {
        let o = args(&["--quick"]);
        let cfg = train_cfg(&o, 0);
        assert!(cfg.rounds <= 8);
    }
}
