//! Microbenchmark of the Louvain cut (paper §5.1 / Fig. 7) across
//! resolutions and dataset sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedomd_data::{generate, spec, DatasetName};
use fedomd_graph::{louvain, louvain_cut, LouvainConfig};

fn bench_louvain(c: &mut Criterion) {
    let mut group = c.benchmark_group("louvain");
    group.sample_size(20);
    for name in [DatasetName::CoraMini, DatasetName::CoauthorCsMini] {
        let ds = generate(&spec(name), 0);
        for &resolution in &[1.0f64, 20.0] {
            let cfg = LouvainConfig {
                resolution,
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::new(ds.name.clone(), format!("res{resolution}")),
                &ds,
                |b, ds| b.iter(|| louvain(&ds.graph, &cfg)),
            );
        }
        group.bench_with_input(
            BenchmarkId::new(format!("{}-full-cut", ds.name), "m5"),
            &ds,
            |b, ds| b.iter(|| louvain_cut(&ds.graph, 5, &Default::default())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_louvain);
criterion_main!(benches);
