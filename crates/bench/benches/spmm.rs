//! Microbenchmark of sparse propagation `Ŝ·X` — the `kmf` factor in the
//! graph-model rows of the paper's Table 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedomd_data::{generate, spec, DatasetName};
use fedomd_sparse::normalized_adjacency;
use fedomd_tensor::rng::seeded;

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    for name in [DatasetName::CoraMini, DatasetName::ComputerMini] {
        let ds = generate(&spec(name), 0);
        let s = normalized_adjacency(ds.n_nodes(), ds.graph.edges());
        for &hidden in &[16usize, 32, 64, 128, 256] {
            let mut rng = seeded(1);
            let x = fedomd_tensor::init::standard_normal(ds.n_nodes(), hidden, &mut rng);
            group.bench_with_input(
                BenchmarkId::new(ds.name.clone(), hidden),
                &(&s, &x),
                |b, (s, x)| b.iter(|| s.spmm(x)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_spmm);
criterion_main!(benches);
