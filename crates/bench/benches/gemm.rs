//! Microbenchmark of the dense GEMM kernels — the `nf²` factor in every
//! client-time row of the paper's Table 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedomd_tensor::gemm::{matmul, matmul_nt, matmul_tn};
use fedomd_tensor::rng::seeded;
use fedomd_tensor::Matrix;

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = seeded(seed);
    fedomd_tensor::init::standard_normal(rows, cols, &mut rng)
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    // Shapes drawn from the actual workloads: (nodes × features) · (features × hidden).
    // 2708×1433×16 is the paper-scale Cora first layer (Table 3's dominant cost).
    for &(m, k, n) in &[
        (560usize, 96usize, 64usize),
        (2708, 256, 64),
        (1024, 1024, 64),
        (2708, 1433, 16),
    ] {
        let a = rand_matrix(m, k, 1);
        let b = rand_matrix(k, n, 2);
        group.bench_with_input(
            BenchmarkId::new("nn", format!("{m}x{k}x{n}")),
            &(&a, &b),
            |bch, (a, b)| bch.iter(|| matmul(a, b)),
        );
        // Backward shapes.
        let g = rand_matrix(m, n, 3);
        group.bench_with_input(
            BenchmarkId::new("tn_weight_grad", format!("{m}x{k}x{n}")),
            &(&a, &g),
            |bch, (a, g)| bch.iter(|| matmul_tn(a, g)),
        );
        group.bench_with_input(
            BenchmarkId::new("nt_input_grad", format!("{m}x{k}x{n}")),
            &(&g, &b),
            |bch, (g, b)| bch.iter(|| matmul_nt(g, b)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
