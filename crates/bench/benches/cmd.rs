//! Microbenchmark of the CMD distance and its gradient (paper Eq. 11) and
//! of the moment computations behind the two-round protocol — the
//! `n²f`-ish extra client term in FedOMD's Table 3 row.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedomd_autograd::cmd::{cmd_grad, cmd_value, CmdTargets};
use fedomd_tensor::rng::seeded;
use fedomd_tensor::stats::central_moments_upto;
use fedomd_tensor::{column_means, Matrix};

fn activations(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = seeded(seed);
    fedomd_tensor::init::standard_normal(n, d, &mut rng).map(|v| v.abs() * 0.3)
}

fn bench_cmd(c: &mut Criterion) {
    let mut group = c.benchmark_group("cmd");
    for &(n, d) in &[(560usize, 64usize), (2708, 64), (2708, 256)] {
        let z = activations(n, d, 1);
        let targets = CmdTargets::from_matrix(&activations(n, d, 2), 5);
        group.bench_with_input(BenchmarkId::new("value", format!("{n}x{d}")), &z, |b, z| {
            b.iter(|| cmd_value(z, &targets, 1.0))
        });
        group.bench_with_input(BenchmarkId::new("grad", format!("{n}x{d}")), &z, |b, z| {
            b.iter(|| cmd_grad(z, &targets, 1.0, 1.0))
        });
        group.bench_with_input(
            BenchmarkId::new("moments_upto5", format!("{n}x{d}")),
            &z,
            |b, z| {
                let means = column_means(z);
                b.iter(|| central_moments_upto(z, &means, 5))
            },
        );
    }
    // Extended shapes (PR 8): the variance-only sweep (order 2, the cheapest
    // constraint config) and the order-3 ablation, at the paper-scale shape.
    let z = activations(2708, 256, 1);
    let targets3 = CmdTargets::from_matrix(&activations(2708, 256, 2), 3);
    group.bench_with_input(BenchmarkId::new("moments_upto2", "2708x256"), &z, |b, z| {
        let means = column_means(z);
        b.iter(|| central_moments_upto(z, &means, 2))
    });
    group.bench_with_input(BenchmarkId::new("value_order3", "2708x256"), &z, |b, z| {
        b.iter(|| cmd_value(z, &targets3, 1.0))
    });
    group.bench_with_input(BenchmarkId::new("grad_order3", "2708x256"), &z, |b, z| {
        b.iter(|| cmd_grad(z, &targets3, 1.0, 1.0))
    });
    group.finish();
}

criterion_group!(benches, bench_cmd);
criterion_main!(benches);
