//! Encode/decode throughput of the transport frame codec — the serialisation
//! cost a real deployment would pay on top of the arithmetic each round:
//! `WeightUpdate` frames carrying 2-layer GCN weight tensors, and
//! `GlobalStats` frames carrying the per-layer mean and central-moment
//! vectors of the 2-round protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fedomd_tensor::rng::seeded;
use fedomd_transport::{Envelope, Payload, Tensor, SERVER_SENDER};

fn weight_update(f: usize, d: usize, k: usize) -> Envelope {
    let mut rng = seeded(1);
    // The two layers of a GCN: input->hidden and hidden->output.
    let params = [(f, d), (d, k)]
        .iter()
        .map(|&(r, c)| Tensor::from(&fedomd_tensor::init::xavier_uniform(r, c, &mut rng)))
        .collect();
    Envelope {
        round: 7,
        sender: 0,
        payload: Payload::WeightUpdate { params },
    }
}

fn global_stats(layers: usize, d: usize, orders: usize) -> Envelope {
    let mut rng = seeded(2);
    let mut vector = |d: usize| -> Vec<f32> {
        Tensor::from(&fedomd_tensor::init::standard_normal(1, d, &mut rng)).data
    };
    let means: Vec<Vec<f32>> = (0..layers).map(|_| vector(d)).collect();
    let moments: Vec<Vec<Vec<f32>>> = (0..layers)
        .map(|_| (0..orders).map(|_| vector(d)).collect())
        .collect();
    Envelope {
        round: 7,
        sender: SERVER_SENDER,
        payload: Payload::GlobalStats { means, moments },
    }
}

fn bench_codec(c: &mut Criterion, label: &str, env: Envelope) {
    let bytes = env.encode();
    let mut group = c.benchmark_group("transport");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_with_input(BenchmarkId::new("encode", label), &env, |b, env| {
        b.iter(|| env.encode())
    });
    group.bench_with_input(BenchmarkId::new("decode", label), &bytes, |b, bytes| {
        b.iter(|| Envelope::decode(bytes).expect("valid frame"))
    });
    group.finish();
}

fn bench_transport(c: &mut Criterion) {
    // Cora-scale 2-layer GCN weights (1433 features, 64 hidden, 7 classes)
    // and a mini-scale model.
    bench_codec(c, "weights_1433x64x7", weight_update(1433, 64, 7));
    bench_codec(c, "weights_64x16x4", weight_update(64, 16, 4));
    // Per-layer statistics: mean + orders 2..=5 for 2 hidden layers.
    bench_codec(c, "stats_2layx64d", global_stats(2, 64, 4));
    bench_codec(c, "stats_4layx256d", global_stats(4, 256, 4));
}

criterion_group!(benches, bench_transport);
criterion_main!(benches);
