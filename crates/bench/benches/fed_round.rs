//! End-to-end cost of one communication round per algorithm — the measured
//! counterpart of the paper's Table 3, under Criterion statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedomd_bench::{table4_rows, Algo};
use fedomd_core::{run_fedomd_observed, FedOmdConfig};
use fedomd_data::{generate, spec, DatasetName};
use fedomd_federated::{setup_federation, FederationConfig, PipelineConfig, TrainConfig};
use fedomd_telemetry::{JsonlObserver, NullObserver};
use fedomd_transport::InProcChannel;

fn bench_round(c: &mut Criterion) {
    let ds = generate(&spec(DatasetName::CoraMini), 0);
    let clients = setup_federation(&ds, &FederationConfig::mini(3, 0));
    // Exactly two rounds, no early stopping, sparse eval: the measured body
    // is dominated by the per-round client/server work.
    let cfg = TrainConfig {
        rounds: 2,
        patience: 2,
        eval_every: 2,
        ..TrainConfig::mini(0)
    };

    let mut group = c.benchmark_group("fed_round");
    group.sample_size(10);
    for algo in table4_rows() {
        group.bench_with_input(
            BenchmarkId::new("two_rounds", algo.name()),
            &algo,
            |b, algo| b.iter(|| algo.run(&clients, ds.n_classes, &cfg)),
        );
    }
    // FedOMD's stat exchange in isolation (CMD on, 5 orders) vs off.
    let on = Algo::FedOmd(FedOmdConfig::paper());
    let off = Algo::FedOmd(FedOmdConfig {
        use_cmd: false,
        ..FedOmdConfig::paper()
    });
    group.bench_function("fedomd_cmd_on", |b| {
        b.iter(|| on.run(&clients, ds.n_classes, &cfg))
    });
    group.bench_function("fedomd_cmd_off", |b| {
        b.iter(|| off.run(&clients, ds.n_classes, &cfg))
    });
    // Pipelined vs phase-sequential round driver: same numbers (golden
    // pinned), the pair measures what overlapping client training with the
    // streaming fold buys in-process on this box.
    let piped = TrainConfig {
        pipeline: PipelineConfig::on(),
        ..cfg.clone()
    };
    group.bench_function("fedomd_pipeline_off", |b| {
        b.iter(|| {
            run_fedomd_observed(
                &clients,
                ds.n_classes,
                &cfg,
                &FedOmdConfig::paper(),
                &mut InProcChannel::new(),
                &mut NullObserver,
            )
        })
    });
    group.bench_function("fedomd_pipeline_on", |b| {
        b.iter(|| {
            run_fedomd_observed(
                &clients,
                ds.n_classes,
                &piped,
                &FedOmdConfig::paper(),
                &mut InProcChannel::new(),
                &mut NullObserver,
            )
        })
    });
    // Telemetry overhead: the same two FedOMD rounds with the zero-cost
    // NullObserver vs a JsonlObserver serialising every event to a sink
    // (DESIGN.md §10 budgets the gap at <1% of round wall-clock).
    group.bench_function("fedomd_telemetry_off", |b| {
        b.iter(|| {
            run_fedomd_observed(
                &clients,
                ds.n_classes,
                &cfg,
                &FedOmdConfig::paper(),
                &mut InProcChannel::new(),
                &mut NullObserver,
            )
        })
    });
    group.bench_function("fedomd_telemetry_jsonl", |b| {
        b.iter(|| {
            let mut sink = JsonlObserver::new(std::io::sink());
            run_fedomd_observed(
                &clients,
                ds.n_classes,
                &cfg,
                &FedOmdConfig::paper(),
                &mut InProcChannel::new(),
                &mut sink,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_round);
criterion_main!(benches);
