//! Massive-cohort rounds: latency and peak memory of one full FedOMD
//! round over a 5000-party planted federation, sampling 100 / 1000 / 5000
//! clients per round (DESIGN.md §15).
//!
//! Besides the Criterion timings, each cohort size appends a
//! `cohort_scale/peak_rss_kb/<size>` record to `$CRITERION_JSON` holding
//! the peak RSS (`VmHWM`) in kilobytes — the stub's `mean_ns` field
//! carries the KB value. `VmHWM` is monotone over a process lifetime, so
//! each cohort size runs in a spawned child process (re-exec of this
//! bench binary with `FEDOMD_COHORT_CHILD=<size>`): every RSS record is
//! then the true peak of exactly one cohort size, at the cost of
//! regenerating the federation per child. When re-exec is unavailable
//! (no `current_exe`, spawn failure) the bench falls back to the
//! pre-isolation behavior — sizes run ascending in-process, so a
//! reading is only an upper bound that includes smaller sizes' peaks —
//! and says so on stderr.

use std::io::Write;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedomd_core::{FedOmdConfig, FedRun};
use fedomd_data::{generate, SynthParams};
use fedomd_federated::{
    setup_federation_planted, CohortConfig, FederationConfig, PipelineConfig, TrainConfig,
};

const PARTIES: usize = 5000;
const COHORTS: [usize; 3] = [100, 1000, 5000];

/// Env var selecting child mode: run exactly one cohort size, then exit.
const CHILD_ENV: &str = "FEDOMD_COHORT_CHILD";

/// Peak resident set (`VmHWM`) of this process, in kB.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Appends a record in the criterion-stub JSONL schema so `bench_report`
/// folds the RSS next to the timings.
fn record_rss(size: usize) {
    let (Ok(path), Some(kb)) = (std::env::var("CRITERION_JSON"), peak_rss_kb()) else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line =
        format!("{{\"label\":\"cohort_scale/peak_rss_kb/{size}\",\"mean_ns\":{kb},\"min_ns\":{kb},\"iters\":1}}\n");
    let _ = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
}

/// Benches one cohort size (setup + one-round latency + RSS record).
/// Runs inside the per-size child process, or in-process as the fallback.
fn run_size(c: &mut Criterion, size: usize) {
    let ds = generate(&SynthParams::many_party(PARTIES), 0);
    let clients = setup_federation_planted(&ds, &FederationConfig::mini(PARTIES, 0));

    let mut group = c.benchmark_group("cohort_scale");
    group.sample_size(10);
    // Exactly one full-protocol round (2-round stats exchange + local
    // epochs + streaming aggregation) per iteration.
    let cfg = TrainConfig {
        rounds: 1,
        patience: 1,
        eval_every: 1,
        cohort: if size == PARTIES {
            CohortConfig::full()
        } else {
            CohortConfig::fraction(size as f64 / PARTIES as f64, 0)
        },
        ..TrainConfig::mini(0)
    };
    group.bench_with_input(BenchmarkId::new("round", size), &cfg, |b, cfg| {
        b.iter(|| {
            FedRun::new(&clients, ds.n_classes)
                .train(cfg.clone())
                .omd(FedOmdConfig::paper())
                .run()
        })
    });
    // The same round with the fold-on-arrival driver: bit-identical
    // numbers, the pair measures the overlap win at cohort scale.
    let piped = TrainConfig {
        pipeline: PipelineConfig::on(),
        ..cfg.clone()
    };
    group.bench_with_input(
        BenchmarkId::new("round_pipelined", size),
        &piped,
        |b, cfg| {
            b.iter(|| {
                FedRun::new(&clients, ds.n_classes)
                    .train(cfg.clone())
                    .omd(FedOmdConfig::paper())
                    .run()
            })
        },
    );
    record_rss(size);
    group.finish();
}

fn bench_cohort_scale(c: &mut Criterion) {
    if let Ok(v) = std::env::var(CHILD_ENV) {
        // Child mode: one size, isolated VmHWM, then exit.
        match v.parse::<usize>() {
            Ok(size) => run_size(c, size),
            Err(e) => eprintln!("cohort_scale: bad {CHILD_ENV}={v}: {e}"),
        }
        return;
    }
    for size in COHORTS {
        let spawned = std::env::current_exe().and_then(|exe| {
            std::process::Command::new(exe)
                .env(CHILD_ENV, size.to_string())
                .status()
        });
        match spawned {
            Ok(status) if status.success() => {}
            failed => {
                // Documented fallback: without process isolation VmHWM is
                // shared, so run in-process in ascending size order — the
                // reading is then an upper bound contaminated by smaller
                // sizes (the pre-PR8 methodology).
                eprintln!(
                    "cohort_scale: child for size {size} unavailable ({failed:?}); \
                     falling back to in-process (RSS not isolated)"
                );
                run_size(c, size);
            }
        }
    }
}

criterion_group!(benches, bench_cohort_scale);
criterion_main!(benches);
