//! Massive-cohort rounds: latency and peak memory of one full FedOMD
//! round over a 5000-party planted federation, sampling 100 / 1000 / 5000
//! clients per round (DESIGN.md §15).
//!
//! Besides the Criterion timings, each cohort size appends a
//! `cohort_scale/peak_rss_kb/<size>` record to `$CRITERION_JSON` holding
//! the process peak RSS (`VmHWM`) in kilobytes — the stub's `mean_ns`
//! field carries the KB value. Peak RSS is monotone over the process
//! lifetime, so sizes run in ascending order: each record is the true
//! peak for its size given everything smaller already ran.

use std::io::Write;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedomd_core::{FedOmdConfig, FedRun};
use fedomd_data::{generate, SynthParams};
use fedomd_federated::{setup_federation_planted, CohortConfig, FederationConfig, TrainConfig};

const PARTIES: usize = 5000;
const COHORTS: [usize; 3] = [100, 1000, 5000];

/// Peak resident set (`VmHWM`) of this process, in kB.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Appends a record in the criterion-stub JSONL schema so `bench_report`
/// folds the RSS next to the timings.
fn record_rss(size: usize) {
    let (Ok(path), Some(kb)) = (std::env::var("CRITERION_JSON"), peak_rss_kb()) else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line =
        format!("{{\"label\":\"cohort_scale/peak_rss_kb/{size}\",\"mean_ns\":{kb},\"min_ns\":{kb},\"iters\":1}}\n");
    let _ = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
}

fn bench_cohort_scale(c: &mut Criterion) {
    let ds = generate(&SynthParams::many_party(PARTIES), 0);
    let clients = setup_federation_planted(&ds, &FederationConfig::mini(PARTIES, 0));

    let mut group = c.benchmark_group("cohort_scale");
    group.sample_size(10);
    for size in COHORTS {
        // Exactly one full-protocol round (2-round stats exchange + local
        // epochs + streaming aggregation) per iteration.
        let cfg = TrainConfig {
            rounds: 1,
            patience: 1,
            eval_every: 1,
            cohort: if size == PARTIES {
                CohortConfig::full()
            } else {
                CohortConfig::fraction(size as f64 / PARTIES as f64, 0)
            },
            ..TrainConfig::mini(0)
        };
        group.bench_with_input(BenchmarkId::new("round", size), &cfg, |b, cfg| {
            b.iter(|| {
                FedRun::new(&clients, ds.n_classes)
                    .train(cfg.clone())
                    .omd(FedOmdConfig::paper())
                    .run()
            })
        });
        record_rss(size);
    }
    group.finish();
}

criterion_group!(benches, bench_cohort_scale);
criterion_main!(benches);
