//! The price of real sockets: the same two FedOMD rounds driven over the
//! in-process channel vs the TCP-loopback deployment (DESIGN.md §14).
//! The loopback figure includes the whole deployment lifecycle — bind,
//! handshake, three client threads, teardown — which is exactly what a
//! `fedomd-server` + `fedomd-client` restart costs.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use fedomd_core::{run_config_digest, run_fedomd_observed, FedOmdConfig, RunConfig};
use fedomd_data::{generate, spec, DatasetName};
use fedomd_federated::{setup_federation, ClientData, FederationConfig, RunResult, TrainConfig};
use fedomd_net::{
    run_client, serve_on, ClientOpts, Hello, NetConfig, ServeOpts, Welcome, PROTOCOL_VERSION,
};
use fedomd_telemetry::NullObserver;
use fedomd_transport::{Envelope, InProcChannel, Payload, Tensor};

fn two_round_config() -> RunConfig {
    // Exactly two rounds, no early stopping, sparse eval — the same
    // measured body as the fed_round suite, so the two files compare.
    let train = TrainConfig {
        rounds: 2,
        patience: 2,
        eval_every: 2,
        ..TrainConfig::mini(0)
    };
    RunConfig::mini(0).with_train(train)
}

fn loopback_net() -> NetConfig {
    NetConfig {
        phase_timeout: Duration::from_secs(10),
        connect_attempts: 100,
        connect_backoff: Duration::from_millis(10),
        join_timeout: Duration::from_secs(30),
        ..NetConfig::default()
    }
}

/// One full TCP deployment on an ephemeral loopback port: server plus
/// one thread per client, joined to completion.
fn tcp_run(run: &RunConfig, name: &str, clients: &[ClientData], n_classes: usize) -> RunResult {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let net = loopback_net();
    let server = {
        let run = run.clone();
        let name = name.to_string();
        let opts = ServeOpts {
            net,
            ..ServeOpts::new(clients.len())
        };
        std::thread::spawn(move || serve_on(listener, &opts, &run, &name, &mut NullObserver))
    };
    let workers: Vec<_> = clients
        .iter()
        .enumerate()
        .map(|(id, shard)| {
            let opts = ClientOpts {
                addr: addr.clone(),
                id: id as u32,
                net,
            };
            let (run, name, shard) = (run.clone(), name.to_string(), shard.clone());
            let n = clients.len();
            std::thread::spawn(move || {
                run_client(&opts, &run, &name, n, &shard, n_classes, &mut NullObserver)
                    .expect("client run")
            })
        })
        .collect();
    let result = server
        .join()
        .expect("server thread")
        .expect("server run completes");
    for w in workers {
        w.join().expect("client thread");
    }
    result
}

/// The pre-encoded `(WeightUpdate, Metrics)` wire bytes a scripted client
/// ships each round, shared across the bench's iterations.
type RoundFrames = Arc<Vec<(Vec<u8>, Vec<u8>)>>;

/// Reads one length-prefixed frame into a reusable scratch buffer without
/// decoding it — the cheapest faithful way for a scripted client to
/// acknowledge a downlink.
fn discard_frame(r: &mut impl Read, scratch: &mut Vec<u8>) {
    let mut len = [0u8; 4];
    r.read_exact(&mut len).expect("frame length");
    scratch.resize(u32::from_le_bytes(len) as usize, 0);
    r.read_exact(scratch).expect("frame body");
}

/// One scripted client for the heterogeneous-workload bench: handshakes
/// like `fedomd-client`, then per round "trains" by sleeping its stagger,
/// ships a pre-encoded `WeightUpdate` + `Metrics` pair, and discard-reads
/// the downlink (`GlobalModel`, then the `Control` verdict on every round
/// but its last). The script stands in for a *remote* machine, so none of
/// its CPU belongs in the measurement: frames are encoded once outside
/// the timed region, downlinks are drained unread, and the stagger is a
/// sleep rather than compute. What remains on this box is the server's
/// own work — and the idle arrival spread the pipelined server folds in.
fn fake_client(addr: String, id: u32, digest: u64, stagger: Duration, frames: RoundFrames) {
    let mut stream = TcpStream::connect(&addr).expect("fake client connect");
    // Same socket discipline as `run_client`: without it the tiny length
    // prefixes stall on Nagle + delayed ACK and swamp the measurement.
    stream.set_nodelay(true).expect("nodelay");
    let mut scratch = Vec::new();
    Hello {
        version: PROTOCOL_VERSION,
        client_id: id,
        digest,
    }
    .write_to(&mut stream)
    .expect("hello");
    let welcome = Welcome::read_from(&mut stream).expect("welcome");
    assert!(welcome.accept, "fake client rejected: {}", welcome.reason);
    if welcome.has_model {
        discard_frame(&mut stream, &mut scratch);
    }
    let rounds = frames.len();
    for (r, (weights, metrics)) in frames.iter().enumerate() {
        std::thread::sleep(stagger);
        stream.write_all(weights).expect("upload");
        discard_frame(&mut stream, &mut scratch); // global model
        stream.write_all(metrics).expect("metrics");
        // The server only downlinks a verdict between rounds; a client's
        // last scheduled round ends without one (see run_fedomd_server).
        if r + 1 < rounds {
            discard_frame(&mut stream, &mut scratch);
        }
    }
}

/// A frame with its length prefix baked in, so shipping it is a single
/// `write_all` — the same bytes `write_prefixed` puts on the wire.
fn prefixed(frame: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + frame.len());
    out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame);
    out
}

/// Pre-encodes every frame client `id` will ship across `rounds` rounds:
/// one ~`params`-sized `WeightUpdate` plus one `Metrics` report per round.
fn hetero_frames(id: u32, rounds: usize, params: &[Tensor]) -> RoundFrames {
    Arc::new(
        (0..rounds as u64)
            .map(|round| {
                let weights = Envelope {
                    round,
                    sender: id,
                    payload: Payload::WeightUpdate {
                        params: params.to_vec(),
                    },
                }
                .encode();
                let metrics = Envelope {
                    round,
                    sender: id,
                    payload: Payload::Metrics {
                        train_loss: 1.0,
                        val_correct: 1,
                        val_total: 2,
                        test_correct: 1,
                        test_total: 2,
                    },
                }
                .encode();
                (prefixed(weights), prefixed(metrics))
            })
            .collect(),
    )
}

/// A TCP deployment over scripted clients with staggered upload times
/// (client `i` sleeps `i × step` per round before shipping its frames).
fn hetero_tcp_run(run: &RunConfig, name: &str, step: Duration, frames: &[RoundFrames]) {
    let m = frames.len();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server = {
        let run = run.clone();
        let name = name.to_string();
        let opts = ServeOpts {
            net: loopback_net(),
            ..ServeOpts::new(m)
        };
        std::thread::spawn(move || serve_on(listener, &opts, &run, &name, &mut NullObserver))
    };
    let digest = run_config_digest(&run.train, &run.omd, name, m);
    let workers: Vec<_> = frames
        .iter()
        .enumerate()
        .map(|(id, frames)| {
            let (addr, frames) = (addr.clone(), Arc::clone(frames));
            let id = id as u32;
            std::thread::spawn(move || fake_client(addr, id, digest, step * id, frames))
        })
        .collect();
    server
        .join()
        .expect("server thread")
        .expect("server run completes");
    for w in workers {
        w.join().expect("fake client thread");
    }
}

fn bench_net_round(c: &mut Criterion) {
    let ds = generate(&spec(DatasetName::CoraMini), 0);
    let clients = setup_federation(&ds, &FederationConfig::mini(3, 0));
    let run = two_round_config();

    let mut group = c.benchmark_group("net_round");
    group.sample_size(10);
    group.bench_function("inproc_two_rounds", |b| {
        b.iter(|| {
            run_fedomd_observed(
                &clients,
                ds.n_classes,
                &run.train,
                &run.omd,
                &mut InProcChannel::new(),
                &mut NullObserver,
            )
        })
    });
    group.bench_function("tcp_loopback_two_rounds", |b| {
        b.iter(|| tcp_run(&run, &ds.name, &clients, ds.n_classes))
    });
    group.bench_function("tcp_loopback_pipelined_two_rounds", |b| {
        let piped = run.clone().with_pipelined(true);
        b.iter(|| tcp_run(&piped, &ds.name, &clients, ds.n_classes))
    });

    // Heterogeneous client workloads: 6 scripted clients whose ~4 MB
    // WeightUpdates land 16 ms apart. The sequential server buffers the
    // whole cohort, then decodes-what-remains and folds after the last
    // arrival; the pipelined one decodes and folds each frame inside the
    // arrival gaps, so per-upload server work vanishes from the round's
    // critical path. The stagger must exceed the per-upload server cost
    // (~6 ms decode + ~6 ms fold on this class of box): narrower gaps
    // oversubscribe the CPU, folds queue past the last arrival, and the
    // overlap the pair is probing disappears into scheduler contention.
    let hetero = {
        let train = TrainConfig {
            rounds: 6,
            patience: 8,
            eval_every: 6,
            ..TrainConfig::mini(0)
        };
        // No CMD: the stats exchange is off the measured path, leaving
        // exactly the weight-upload fold the pair is probing.
        let omd = FedOmdConfig {
            use_cmd: false,
            ..FedOmdConfig::paper()
        };
        RunConfig::mini(0).with_train(train).with_omd(omd)
    };
    let params: Vec<Tensor> = (0..4)
        .map(|i| Tensor {
            rows: 512,
            cols: 512,
            data: vec![0.5 + i as f32; 512 * 512],
        })
        .collect();
    let frames: Vec<_> = (0..6)
        .map(|id| hetero_frames(id, hetero.train.rounds, &params))
        .collect();
    let step = Duration::from_millis(16);
    group.bench_function("tcp_hetero_sequential", |b| {
        b.iter(|| hetero_tcp_run(&hetero, "hetero-bench", step, &frames))
    });
    group.bench_function("tcp_hetero_pipelined", |b| {
        let piped = hetero.clone().with_pipelined(true);
        b.iter(|| hetero_tcp_run(&piped, "hetero-bench", step, &frames))
    });
    group.finish();
}

criterion_group!(benches, bench_net_round);
criterion_main!(benches);
