//! The price of real sockets: the same two FedOMD rounds driven over the
//! in-process channel vs the TCP-loopback deployment (DESIGN.md §14).
//! The loopback figure includes the whole deployment lifecycle — bind,
//! handshake, three client threads, teardown — which is exactly what a
//! `fedomd-server` + `fedomd-client` restart costs.

use std::net::TcpListener;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use fedomd_core::{run_fedomd_observed, RunConfig};
use fedomd_data::{generate, spec, DatasetName};
use fedomd_federated::{setup_federation, ClientData, FederationConfig, RunResult, TrainConfig};
use fedomd_net::{run_client, serve_on, ClientOpts, NetConfig, ServeOpts};
use fedomd_telemetry::NullObserver;
use fedomd_transport::InProcChannel;

fn two_round_config() -> RunConfig {
    // Exactly two rounds, no early stopping, sparse eval — the same
    // measured body as the fed_round suite, so the two files compare.
    let train = TrainConfig {
        rounds: 2,
        patience: 2,
        eval_every: 2,
        ..TrainConfig::mini(0)
    };
    RunConfig::mini(0).with_train(train)
}

fn loopback_net() -> NetConfig {
    NetConfig {
        phase_timeout: Duration::from_secs(10),
        connect_attempts: 100,
        connect_backoff: Duration::from_millis(10),
        join_timeout: Duration::from_secs(30),
        ..NetConfig::default()
    }
}

/// One full TCP deployment on an ephemeral loopback port: server plus
/// one thread per client, joined to completion.
fn tcp_run(run: &RunConfig, name: &str, clients: &[ClientData], n_classes: usize) -> RunResult {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let net = loopback_net();
    let server = {
        let run = run.clone();
        let name = name.to_string();
        let opts = ServeOpts {
            net,
            ..ServeOpts::new(clients.len())
        };
        std::thread::spawn(move || serve_on(listener, &opts, &run, &name, &mut NullObserver))
    };
    let workers: Vec<_> = clients
        .iter()
        .enumerate()
        .map(|(id, shard)| {
            let opts = ClientOpts {
                addr: addr.clone(),
                id: id as u32,
                net,
            };
            let (run, name, shard) = (run.clone(), name.to_string(), shard.clone());
            let n = clients.len();
            std::thread::spawn(move || {
                run_client(&opts, &run, &name, n, &shard, n_classes, &mut NullObserver)
                    .expect("client run")
            })
        })
        .collect();
    let result = server
        .join()
        .expect("server thread")
        .expect("server run completes");
    for w in workers {
        w.join().expect("client thread");
    }
    result
}

fn bench_net_round(c: &mut Criterion) {
    let ds = generate(&spec(DatasetName::CoraMini), 0);
    let clients = setup_federation(&ds, &FederationConfig::mini(3, 0));
    let run = two_round_config();

    let mut group = c.benchmark_group("net_round");
    group.sample_size(10);
    group.bench_function("inproc_two_rounds", |b| {
        b.iter(|| {
            run_fedomd_observed(
                &clients,
                ds.n_classes,
                &run.train,
                &run.omd,
                &mut InProcChannel::new(),
                &mut NullObserver,
            )
        })
    });
    group.bench_function("tcp_loopback_two_rounds", |b| {
        b.iter(|| tcp_run(&run, &ds.name, &clients, ds.n_classes))
    });
    group.finish();
}

criterion_group!(benches, bench_net_round);
criterion_main!(benches);
