//! `fedomd-server` — hosts one FedOMD run for real client processes.
//!
//! ```text
//! fedomd-server --addr 127.0.0.1:7447 --clients 3 [--dataset cora-mini]
//!               [--seed 0] [--rounds N] [--checkpoint PATH [--every K] [--resume]]
//!               [--phase-timeout-ms MS] [--pipelined] [--quiet]
//! ```
//!
//! The server never touches the dataset: it aggregates whatever its
//! clients report. `--dataset`/`--seed`/`--clients` only pin the
//! run-configuration digest that the handshake checks, so a client
//! started against a different dataset or seed is rejected instead of
//! silently polluting the aggregation. Exit codes: 0 run complete, 1
//! transport or checkpoint failure, 2 usage error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use fedomd_core::RunConfig;
use fedomd_data::{spec, DatasetName};
use fedomd_net::{serve, NetConfig, ServeOpts};
use fedomd_telemetry::{ConsoleObserver, NullObserver, RoundObserver};

struct Args {
    addr: String,
    clients: usize,
    dataset: String,
    seed: u64,
    rounds: Option<usize>,
    checkpoint: Option<PathBuf>,
    every: usize,
    resume: bool,
    phase_timeout_ms: Option<u64>,
    pipelined: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7447".into(),
        clients: 0,
        dataset: "cora-mini".into(),
        seed: 0,
        rounds: None,
        checkpoint: None,
        every: 10,
        resume: false,
        phase_timeout_ms: None,
        pipelined: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--dataset" => args.dataset = value("--dataset")?,
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--rounds" => {
                args.rounds = Some(
                    value("--rounds")?
                        .parse()
                        .map_err(|e| format!("--rounds: {e}"))?,
                )
            }
            "--checkpoint" => args.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--every" => {
                args.every = value("--every")?
                    .parse()
                    .map_err(|e| format!("--every: {e}"))?
            }
            "--resume" => args.resume = true,
            "--phase-timeout-ms" => {
                args.phase_timeout_ms = Some(
                    value("--phase-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--phase-timeout-ms: {e}"))?,
                )
            }
            "--pipelined" => args.pipelined = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                return Err(
                    "usage: fedomd-server --addr HOST:PORT --clients N [--dataset NAME] \
                     [--seed S] [--rounds R] [--checkpoint PATH [--every K] [--resume]] \
                     [--phase-timeout-ms MS] [--pipelined] [--quiet]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.clients == 0 {
        return Err("--clients is required and must be > 0".into());
    }
    if args.resume && args.checkpoint.is_none() {
        return Err("--resume needs --checkpoint".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("fedomd-server: {msg}");
            return ExitCode::from(2);
        }
    };
    let Some(name) = DatasetName::parse(&args.dataset) else {
        eprintln!("fedomd-server: unknown dataset `{}`", args.dataset);
        return ExitCode::from(2);
    };
    let dataset = spec(name).name;
    let mut run = if dataset.ends_with("-mini") {
        RunConfig::mini(args.seed)
    } else {
        RunConfig::paper(args.seed)
    };
    if let Some(rounds) = args.rounds {
        run.train.rounds = rounds;
    }
    // Excluded from the handshake digest: pipelined servers and
    // sequential clients interoperate (the numbers are identical).
    run = run.with_pipelined(args.pipelined);
    let mut net = NetConfig::default();
    if let Some(ms) = args.phase_timeout_ms {
        net.phase_timeout = Duration::from_millis(ms);
    }
    let opts = ServeOpts {
        n_clients: args.clients,
        halt_after: None,
        checkpoint: args.checkpoint.map(|p| (p, args.every)),
        resume: args.resume,
        net,
    };

    let mut console;
    let mut null = NullObserver;
    let obs: &mut dyn RoundObserver = if args.quiet {
        &mut null
    } else {
        console = ConsoleObserver::stderr();
        &mut console
    };
    eprintln!(
        "fedomd-server: hosting {dataset} (seed {}) for {} clients on {}",
        args.seed, args.clients, args.addr
    );
    match serve(&args.addr, &opts, &run, &dataset, obs) {
        Ok(result) => {
            println!(
                "fedomd-server: done — best val {:.4}, test {:.4} (round {}), {} history entries",
                result.val_acc,
                result.test_acc,
                result.best_round,
                result.history.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fedomd-server: {e}");
            ExitCode::from(1)
        }
    }
}
