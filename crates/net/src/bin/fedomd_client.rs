//! `fedomd-client` — trains one federated party against `fedomd-server`.
//!
//! ```text
//! fedomd-client --addr 127.0.0.1:7447 --id 0 --clients 3
//!               [--dataset cora-mini] [--seed 0] [--rounds N]
//!               [--phase-timeout-ms MS] [--quiet]
//! ```
//!
//! The client regenerates the dataset and takes its own Louvain shard
//! (`--id` of `--clients`) — no files move between processes; the
//! handshake digest guarantees every process derived the same federation.
//! It keeps training through server restarts, reconnecting with backoff
//! and resuming at whatever round the server's handshake names. Exit
//! codes: 0 run complete (or stopped early by the server's verdict), 1
//! the server stayed unreachable or rejected the handshake, 2 usage
//! error.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::time::Duration;

use fedomd_core::RunConfig;
use fedomd_data::{generate, spec, DatasetName};
use fedomd_federated::client_shard;
use fedomd_net::{run_client, ClientOpts, NetConfig};
use fedomd_telemetry::{ConsoleObserver, NullObserver, RoundObserver};

struct Args {
    addr: String,
    id: u32,
    clients: usize,
    dataset: String,
    seed: u64,
    rounds: Option<usize>,
    phase_timeout_ms: Option<u64>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7447".into(),
        id: u32::MAX,
        clients: 0,
        dataset: "cora-mini".into(),
        seed: 0,
        rounds: None,
        phase_timeout_ms: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--id" => args.id = value("--id")?.parse().map_err(|e| format!("--id: {e}"))?,
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--dataset" => args.dataset = value("--dataset")?,
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--rounds" => {
                args.rounds = Some(
                    value("--rounds")?
                        .parse()
                        .map_err(|e| format!("--rounds: {e}"))?,
                )
            }
            "--phase-timeout-ms" => {
                args.phase_timeout_ms = Some(
                    value("--phase-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--phase-timeout-ms: {e}"))?,
                )
            }
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                return Err("usage: fedomd-client --addr HOST:PORT --id I --clients N \
                     [--dataset NAME] [--seed S] [--rounds R] [--phase-timeout-ms MS] [--quiet]"
                    .into())
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.clients == 0 {
        return Err("--clients is required and must be > 0".into());
    }
    if args.id == u32::MAX {
        return Err("--id is required".into());
    }
    if args.id as usize >= args.clients {
        return Err(format!(
            "--id {} out of range for {} clients",
            args.id, args.clients
        ));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("fedomd-client: {msg}");
            return ExitCode::from(2);
        }
    };
    let Some(name) = DatasetName::parse(&args.dataset) else {
        eprintln!("fedomd-client: unknown dataset `{}`", args.dataset);
        return ExitCode::from(2);
    };
    let params = spec(name);
    let mut run = if params.name.ends_with("-mini") {
        RunConfig::mini(args.seed)
    } else {
        RunConfig::paper(args.seed)
    };
    if let Some(rounds) = args.rounds {
        run.train.rounds = rounds;
    }
    let mut net = NetConfig::default();
    if let Some(ms) = args.phase_timeout_ms {
        net.phase_timeout = Duration::from_millis(ms);
    }

    eprintln!(
        "fedomd-client {}: generating {} (seed {}) and cutting shard {}/{}",
        args.id, params.name, args.seed, args.id, args.clients
    );
    let ds = generate(&params, args.seed);
    let fed = if params.name.ends_with("-mini") {
        fedomd_federated::FederationConfig::mini(args.clients, args.seed)
    } else {
        fedomd_federated::FederationConfig::paper(args.clients, args.seed)
    };
    let Some(shard) = client_shard(&ds, &fed, args.id as usize) else {
        eprintln!(
            "fedomd-client: the Louvain cut produced no shard {} of {}",
            args.id, args.clients
        );
        return ExitCode::from(1);
    };

    let mut console;
    let mut null = NullObserver;
    let obs: &mut dyn RoundObserver = if args.quiet {
        &mut null
    } else {
        console = ConsoleObserver::stderr();
        &mut console
    };
    let opts = ClientOpts {
        addr: args.addr,
        id: args.id,
        net,
    };
    match run_client(
        &opts,
        &run,
        &ds.name,
        args.clients,
        &shard,
        ds.n_classes,
        obs,
    ) {
        Ok(report) => {
            println!(
                "fedomd-client {}: {:?} after {} reconnect(s)",
                args.id, report.outcome, report.reconnects
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fedomd-client {}: {e}", args.id);
            ExitCode::from(1)
        }
    }
}
