//! Process entry points: [`serve`] hosts the FedOMD round driver behind a
//! TCP listener, [`run_client`] trains one shard against it and reconnects
//! with backoff when the server is lost. The `fedomd-server` and
//! `fedomd-client` binaries are thin CLI shells over these two functions,
//! and the loopback golden tests call them directly from threads.

use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::Sender;
use fedomd_core::{
    run_config_digest, run_fedomd_client_rounds, run_fedomd_server, ClientOutcome, ClientSession,
    FileCheckpointer, RunCheckpoint, RunConfig, ServerOpts,
};
use fedomd_federated::{ClientData, Persistence, ResumeState, RunResult};
use fedomd_telemetry::RoundObserver;
use fedomd_transport::{from_tensors, to_tensors, Envelope, Payload, SERVER_SENDER};

use crate::client_chan::TcpClientChannel;
use crate::error::NetError;
use crate::server_chan::{Inbound, SyncShared, TcpServerChannel};
use crate::stream::{read_frame, write_prefixed, Hello, Welcome, PROTOCOL_VERSION};

/// Transport knobs shared by both processes.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Frame-size cap enforced before allocation on every read.
    pub max_frame_bytes: u32,
    /// How long either side waits in one collect before degrading the
    /// phase to whatever arrived (the partial-aggregation deadline).
    pub phase_timeout: Duration,
    /// Connection attempts before a client gives up on the server.
    pub connect_attempts: u32,
    /// Pause between connection attempts.
    pub connect_backoff: Duration,
    /// How long the server waits for the initial quorum before starting
    /// the rounds with whoever showed up.
    pub join_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            max_frame_bytes: fedomd_transport::DEFAULT_MAX_FRAME_BYTES,
            phase_timeout: Duration::from_secs(30),
            connect_attempts: 50,
            connect_backoff: Duration::from_millis(200),
            join_timeout: Duration::from_secs(120),
        }
    }
}

/// Server-process options beyond the run configuration.
#[derive(Clone, Debug)]
pub struct ServeOpts {
    /// Number of federated parties.
    pub n_clients: usize,
    /// Crash-injection hook for the resume tests (see
    /// [`fedomd_core::ServerOpts::halt_after`]).
    pub halt_after: Option<usize>,
    /// Checkpoint file and period in rounds (`0` disables saving).
    pub checkpoint: Option<(PathBuf, usize)>,
    /// Restore from the checkpoint file before the first round.
    pub resume: bool,
    /// Transport knobs.
    pub net: NetConfig,
}

impl ServeOpts {
    /// A plain full run for `n_clients` parties.
    pub fn new(n_clients: usize) -> Self {
        Self {
            n_clients,
            halt_after: None,
            checkpoint: None,
            resume: false,
            net: NetConfig::default(),
        }
    }
}

/// Client-process options beyond the run configuration.
#[derive(Clone, Debug)]
pub struct ClientOpts {
    /// Server address, e.g. `127.0.0.1:7447`.
    pub addr: String,
    /// This party's id (`0..n_clients`).
    pub id: u32,
    /// Transport knobs.
    pub net: NetConfig,
}

/// Live-connection registry the acceptor and the reader threads share.
///
/// Each admitted connection is stamped with a monotonically increasing
/// generation token. A handshake for an id that is still registered does
/// **not** reject the newcomer: the old connection may be half-open (a
/// client that died without a FIN, a NAT reset) and would otherwise hold
/// the id hostage forever, turning every rejoin into a fatal "already
/// connected". Instead the newest connection wins — the stale entry's
/// socket is shut down so its blocked reader unblocks and exits — and a
/// reader only deregisters the id while its own generation is still the
/// registered one.
#[derive(Default)]
struct Registry {
    next_gen: u64,
    live: BTreeMap<u32, LiveConn>,
}

struct LiveConn {
    gen: u64,
    /// Clone of the connection's stream, held only so an eviction can
    /// shut the old socket down and release its reader thread.
    stream: TcpStream,
}

impl Registry {
    /// Registers a connection for `id`, evicting (and shutting down) any
    /// stale connection holding the id. Returns the new generation.
    fn register(&mut self, id: u32, stream: TcpStream) -> u64 {
        self.next_gen += 1;
        let gen = self.next_gen;
        if let Some(old) = self.live.insert(id, LiveConn { gen, stream }) {
            let _ = old.stream.shutdown(Shutdown::Both);
        }
        gen
    }

    /// Removes `id` only if `gen` is still its registered connection.
    fn deregister(&mut self, id: u32, gen: u64) {
        if self.live.get(&id).map(|c| c.gen) == Some(gen) {
            self.live.remove(&id);
        }
    }
}

/// What a client process did, for logging and the tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClientReport {
    /// How the final round loop ended.
    pub outcome: ClientOutcome,
    /// Times the server was lost and the connection re-established.
    pub reconnects: u32,
}

/// Binds `addr` and hosts the run; see [`serve_on`].
pub fn serve(
    addr: &str,
    opts: &ServeOpts,
    run: &RunConfig,
    dataset: &str,
    obs: &mut dyn RoundObserver,
) -> Result<RunResult, NetError> {
    let listener = TcpListener::bind(addr)?;
    serve_on(listener, opts, run, dataset, obs)
}

/// Hosts one FedOMD run on an already-bound listener.
///
/// Taking the listener (rather than an address) lets a restarted server
/// reuse the exact socket its clients are retrying — the kill-and-resume
/// test hands the same bound port to the second `serve_on` so no
/// rebinding race exists.
///
/// The acceptor thread admits clients that present the right protocol
/// version, an id in range, and the same run-configuration digest this
/// server computed; each admitted connection gets a reader thread and the
/// round driver runs single-threaded over the merged event queue. The
/// run starts once `opts.n_clients` are connected or the join timeout
/// passes (late clients can still join mid-run and participate from the
/// next round).
///
/// An invalid run configuration (e.g. a NaN cohort `sample_frac`) is
/// [`NetError::Config`] before the listener accepts anything — the digest
/// of a config the server would refuse to run must never be handed to
/// clients as something to match.
pub fn serve_on(
    listener: TcpListener,
    opts: &ServeOpts,
    run: &RunConfig,
    dataset: &str,
    obs: &mut dyn RoundObserver,
) -> Result<RunResult, NetError> {
    run.train.validate(opts.n_clients)?;
    let digest = run_config_digest(&run.train, &run.omd, dataset, opts.n_clients);

    let mut resume_state: Option<ResumeState> = None;
    if opts.resume {
        let Some((path, _)) = &opts.checkpoint else {
            return Err(NetError::Checkpoint(
                "resume requested without a checkpoint path".into(),
            ));
        };
        let ckpt = RunCheckpoint::load(path).map_err(|e| NetError::Checkpoint(e.to_string()))?;
        if ckpt.algorithm != "FedOMD" {
            return Err(NetError::Checkpoint(format!(
                "checkpoint algorithm {:?} is not FedOMD",
                ckpt.algorithm
            )));
        }
        if ckpt.seed != run.train.seed {
            return Err(NetError::Checkpoint(format!(
                "checkpoint seed {} does not match the run seed {}",
                ckpt.seed, run.train.seed
            )));
        }
        resume_state = Some(ckpt.state);
    }
    let start_round = resume_state.as_ref().map_or(0, |s| s.next_round);
    let shared = Arc::new(SyncShared::new(start_round as u64));
    if let Some(global) = resume_state.as_ref().and_then(|s| s.global.as_ref()) {
        // Hand reconnecting clients the checkpointed aggregation so they
        // resume from the federation's weights, not their own init.
        let env = Envelope {
            round: start_round as u64,
            sender: SERVER_SENDER,
            payload: Payload::GlobalModel {
                params: to_tensors(global),
            },
        };
        shared.preload_model(env.encode());
    }

    // Bounded so slow server-side folding applies backpressure to the
    // per-connection readers instead of buffering unboundedly; 1024
    // in-flight frames comfortably covers a full phase from every client.
    let (tx, rx) = crossbeam::channel::bounded(1024);
    let stop = Arc::new(AtomicBool::new(false));
    let registry: Arc<parking_lot::Mutex<Registry>> = Arc::default();
    listener.set_nonblocking(true)?;
    let acceptor = {
        let stop = Arc::clone(&stop);
        let shared = Arc::clone(&shared);
        let registry = Arc::clone(&registry);
        let n_clients = opts.n_clients;
        let max_frame = opts.net.max_frame_bytes;
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // A failed handshake just drops the connection;
                        // the client retries or gives up on its own.
                        let _ = admit(
                            stream, digest, n_clients, max_frame, &tx, &shared, &registry,
                        );
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        })
    };

    let mut chan = TcpServerChannel::new(rx, opts.net.phase_timeout, Arc::clone(&shared));
    chan.wait_for_peers(opts.n_clients, opts.net.join_timeout);

    let mut sink = opts
        .checkpoint
        .as_ref()
        .filter(|(_, every)| *every > 0)
        .map(|(path, every)| FileCheckpointer::new(path, *every, "FedOMD", run.train.seed));
    let persist = Persistence {
        resume: resume_state,
        sink: sink.as_mut().map(|s| s as _),
    };
    let sopts = ServerOpts {
        n_clients: opts.n_clients,
        cohort: run.train.cohort,
        halt_after: opts.halt_after,
    };
    let result = run_fedomd_server(&sopts, &run.train, &run.omd, &mut chan, obs, persist);

    stop.store(true, Ordering::Relaxed);
    let _ = acceptor.join();
    Ok(result)
}

/// Handshakes one fresh connection and, if admitted, hands it to the
/// round driver as a peer with its own reader thread.
fn admit(
    mut stream: TcpStream,
    digest: u64,
    n_clients: usize,
    max_frame: u32,
    tx: &Sender<Inbound>,
    shared: &Arc<SyncShared>,
    registry: &Arc<parking_lot::Mutex<Registry>>,
) -> Result<(), NetError> {
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    // Bound the handshake so a connect-and-stall peer cannot wedge the
    // acceptor; cleared before the reader thread takes over.
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let hello = Hello::read_from(&mut stream)?;
    let reason = if hello.version != PROTOCOL_VERSION {
        Some(format!(
            "protocol version {} != {PROTOCOL_VERSION}",
            hello.version
        ))
    } else if hello.client_id as usize >= n_clients {
        Some(format!(
            "client id {} out of range for {n_clients} parties",
            hello.client_id
        ))
    } else if hello.digest != digest {
        Some("run-configuration digest mismatch".into())
    } else {
        None
    };
    if let Some(reason) = reason {
        Welcome::reject(reason).write_to(&mut stream)?;
        return Ok(());
    }
    let id = hello.client_id;
    // A re-handshake for a registered id is a reconnect, not an error:
    // latest wins, the stale connection is shut down (see [`Registry`]).
    let shutdown_handle = stream.try_clone()?;
    let gen = registry.lock().register(id, shutdown_handle);
    let active_from = shared.join_round();
    let model = shared.model_frame();
    let ok = (|| -> Result<(), NetError> {
        Welcome {
            accept: true,
            reason: String::new(),
            resume_round: active_from,
            has_model: model.is_some(),
        }
        .write_to(&mut stream)?;
        if let Some(frame) = model {
            write_prefixed(&mut stream, &frame)?;
        }
        stream.set_read_timeout(None)?;
        let writer = stream.try_clone()?;
        tx.send(Inbound::Joined {
            id,
            gen,
            writer,
            active_from,
        })
        .map_err(|_| NetError::Protocol("round driver gone".into()))?;
        Ok(())
    })();
    if ok.is_err() {
        registry.lock().deregister(id, gen);
        return ok;
    }
    let tx = tx.clone();
    let registry = Arc::clone(registry);
    // LINT: allow(detached-thread) per-connection reader with no handle to
    // keep: it exits on EOF/error/eviction shutdown of its own socket and
    // announces the departure itself via `Inbound::Left`; the acceptor
    // that spawned it must not block on departed peers.
    std::thread::spawn(move || {
        // Exits on EOF, I/O error, an invalid frame, or an eviction's
        // shutdown — all the same to the federation: this connection is
        // done, and the client is gone until it re-handshakes.
        while let Ok((env, len)) = read_frame(&mut stream, max_frame) {
            if tx.send(Inbound::Frame { id, gen, env, len }).is_err() {
                break;
            }
        }
        registry.lock().deregister(id, gen);
        let _ = tx.send(Inbound::Left { id, gen });
    });
    Ok(())
}

/// Runs one client process: connect (with backoff), handshake, train the
/// rounds the server assigns, and reconnect whenever the server is lost
/// mid-run. Returns once the round budget completes, the server's
/// verdict stops the run, or the server stays unreachable through a full
/// backoff schedule. An invalid run configuration is [`NetError::Config`]
/// before the first connection attempt, mirroring [`serve_on`].
pub fn run_client(
    opts: &ClientOpts,
    run: &RunConfig,
    dataset: &str,
    n_clients: usize,
    client: &ClientData,
    n_classes: usize,
    obs: &mut dyn RoundObserver,
) -> Result<ClientReport, NetError> {
    run.train.validate(n_clients)?;
    let digest = run_config_digest(&run.train, &run.omd, dataset, n_clients);
    let mut session =
        ClientSession::new(&run.train, &run.omd, client.input.n_features(), n_classes);
    let mut reconnects = 0u32;
    loop {
        let mut stream = connect_with_backoff(&opts.addr, &opts.net)?;
        Hello {
            version: PROTOCOL_VERSION,
            client_id: opts.id,
            digest,
        }
        .write_to(&mut stream)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let welcome = Welcome::read_from(&mut stream)?;
        if !welcome.accept {
            return Err(NetError::Rejected(welcome.reason));
        }
        if welcome.has_model {
            let (env, _) = read_frame(&mut stream, opts.net.max_frame_bytes)?;
            match env.payload {
                Payload::GlobalModel { params } => {
                    session.model.set_params(&from_tensors(params));
                }
                // LINT: allow(msg-wildcard) the handshake slot admits
                // exactly one frame type; anything else is a typed
                // protocol error naming the offending kind, not a drop.
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected the handshake model frame, got {}",
                        other.kind()
                    )));
                }
            }
        }
        stream.set_read_timeout(None)?;
        let start_round = welcome.resume_round as usize;
        if start_round >= run.train.rounds {
            // Nothing left to train (e.g. rejoined after the final round).
            return Ok(ClientReport {
                outcome: ClientOutcome::Finished,
                reconnects,
            });
        }
        let mut chan =
            TcpClientChannel::new(stream, opts.net.max_frame_bytes, opts.net.phase_timeout)?;
        match run_fedomd_client_rounds(
            opts.id,
            client,
            &run.train,
            &run.omd,
            &mut session,
            start_round,
            &mut chan,
            obs,
        ) {
            ClientOutcome::ServerLost { .. } => {
                reconnects += 1;
                // The loop re-handshakes; the server's Welcome, not the
                // local round counter, decides where training resumes.
            }
            outcome => {
                return Ok(ClientReport {
                    outcome,
                    reconnects,
                })
            }
        }
    }
}

/// Tries `connect_attempts` times, `connect_backoff` apart.
fn connect_with_backoff(addr: &str, net: &NetConfig) -> Result<TcpStream, NetError> {
    let mut last: Option<std::io::Error> = None;
    for attempt in 0..net.connect_attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(net.connect_backoff);
        }
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_nodelay(true)?;
                return Ok(s);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(NetError::Io(last.unwrap_or_else(|| {
        std::io::Error::other("no connection attempt made")
    })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server_chan::TcpServerChannel;
    use std::io::Read;

    /// A half-open or still-draining connection must not hold a client id
    /// hostage: a re-handshake for the same id is admitted (latest wins)
    /// and the stale connection is shut down, instead of the rejoin being
    /// rejected as "already connected" forever.
    #[test]
    fn a_reconnect_evicts_the_stale_connection_instead_of_rejecting() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let digest = 0xF00D;
        let (tx, rx) = crossbeam::channel::unbounded();
        let shared = Arc::new(SyncShared::new(0));
        let registry: Arc<parking_lot::Mutex<Registry>> = Arc::default();

        let handshake = || -> TcpStream {
            let mut client = TcpStream::connect(addr).expect("connect");
            Hello {
                version: PROTOCOL_VERSION,
                client_id: 0,
                digest,
            }
            .write_to(&mut client)
            .expect("hello");
            let (server_side, _) = listener.accept().expect("accept");
            admit(server_side, digest, 1, 1024, &tx, &shared, &registry).expect("admit");
            client
        };

        let mut first = handshake();
        assert!(Welcome::read_from(&mut first).expect("welcome 1").accept);

        // The same id connects again while the first connection is still
        // open — exactly what the server sees after a client dies without
        // a FIN and comes back.
        let mut second = handshake();
        let welcome = Welcome::read_from(&mut second).expect("welcome 2");
        assert!(welcome.accept, "latest must win, got {:?}", welcome.reason);

        // The eviction shut the first connection down: its next read ends
        // (EOF or reset) instead of hanging.
        first
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout");
        let mut byte = [0u8; 1];
        match first.read(&mut byte) {
            Ok(0) | Err(_) => {}
            Ok(_) => panic!("the evicted connection is still being served"),
        }

        // The round driver ends up with exactly one peer for the id — the
        // second connection's generation — whatever order the abandoned
        // reader's departure notice arrives in.
        let mut chan = TcpServerChannel::new(rx, Duration::from_millis(50), shared);
        let n = chan.wait_for_peers(2, Duration::from_millis(500));
        assert_eq!(n, 1, "one live peer, not zero (evicted) or two (dup)");
    }
}
