//! The server's half of the [`Channel`] trait over TCP.
//!
//! Connection handling lives in [`crate::deploy`]: an acceptor thread
//! performs the handshake and spawns one reader thread per client, and
//! everything those threads learn funnels into a single crossbeam queue
//! of [`Inbound`] events. [`TcpServerChannel`] consumes that queue on the
//! round driver's thread, so the driver itself stays single-threaded and
//! free of socket code.
//!
//! `server_collect` is the only place the server waits: it blocks until
//! every currently connected client has delivered a frame for the round
//! (or the phase deadline passes), then routes the arrivals through
//! [`admit_by_deadline`] — the same admit/drop accounting the in-process
//! fault simulator uses — so a straggler or disconnect degrades the
//! round to partial aggregation instead of wedging it.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError};
use fedomd_transport::{admit_by_deadline, Channel, ChannelState, Envelope, NetStats, Payload};

use crate::stream::write_prefixed;

/// One event from the acceptor or a per-connection reader thread.
///
/// Every event carries the *generation* the acceptor stamped on its
/// connection at handshake time. A client id can be re-used across
/// reconnects, and on a fast reconnect the dying connection's threads
/// race the new connection's: the generation is what lets the channel
/// tell "client 3's current connection" from "client 3's abandoned one",
/// so a stale `Left` cannot evict a freshly rejoined peer and a stale
/// frame cannot impersonate the new connection.
#[derive(Debug)]
pub enum Inbound {
    /// A client passed the handshake. `writer` is the connection's write
    /// half; `active_from` is the first round the federation should wait
    /// for this client (later than the current round for a mid-run
    /// rejoin, so an in-flight phase is not held up by a newcomer that
    /// cannot contribute to it).
    Joined {
        /// Client id from the handshake.
        id: u32,
        /// This connection's generation token.
        gen: u64,
        /// Write half of the connection.
        writer: TcpStream,
        /// First round this client participates in.
        active_from: u64,
    },
    /// A decoded frame arrived from a connected client.
    Frame {
        /// Sending client.
        id: u32,
        /// Generation of the connection it arrived on.
        gen: u64,
        /// The decoded envelope.
        env: Envelope,
        /// Encoded frame size in bytes (for the delivery accounting).
        len: usize,
    },
    /// The client's connection ended (EOF, I/O error, a frame that
    /// failed the codec, or eviction by a newer connection for the same
    /// id). The federation stops waiting for it — unless a newer
    /// generation already took the id over.
    Left {
        /// Departed client.
        id: u32,
        /// Generation of the connection that ended.
        gen: u64,
    },
}

/// State the round thread shares with the acceptor so a client joining
/// mid-run can be told where the federation currently is.
#[derive(Default)]
pub struct SyncShared {
    inner: parking_lot::Mutex<SyncState>,
}

#[derive(Default)]
struct SyncState {
    /// Round the server is currently collecting (valid once `started`).
    round: u64,
    /// Whether the round loop has started collecting.
    started: bool,
    /// The round joining clients should enter while the loop has not
    /// started yet (0 fresh, the checkpoint round after `--resume`).
    initial_round: u64,
    /// Encoded `GlobalModel` frame of the latest aggregation (or the
    /// resumed checkpoint), handed to joining clients so they start from
    /// the federation's current weights.
    model_frame: Option<Vec<u8>>,
}

impl SyncShared {
    /// Fresh shared state for a run entering at `initial_round`.
    pub fn new(initial_round: u64) -> Self {
        Self {
            inner: parking_lot::Mutex::new(SyncState {
                round: initial_round,
                started: false,
                initial_round,
                model_frame: None,
            }),
        }
    }

    /// Called by the channel at the top of every collect.
    fn begin_round(&self, round: u64) {
        let mut s = self.inner.lock();
        s.round = round;
        s.started = true;
    }

    /// Stores the latest encoded `GlobalModel` frame.
    fn set_model(&self, frame: Vec<u8>) {
        self.inner.lock().model_frame = Some(frame);
    }

    /// Seeds the model frame before the run starts (checkpoint resume).
    pub fn preload_model(&self, frame: Vec<u8>) {
        self.set_model(frame);
    }

    /// The round a client joining *now* should enter: the initial round
    /// while the loop has not started, otherwise the round after the one
    /// in flight (whose uplink phases it already missed).
    pub fn join_round(&self) -> u64 {
        let s = self.inner.lock();
        if s.started {
            s.round + 1
        } else {
            s.initial_round
        }
    }

    /// Latest global-model frame, if any aggregation completed yet.
    pub fn model_frame(&self) -> Option<Vec<u8>> {
        self.inner.lock().model_frame.clone()
    }
}

struct Peer {
    writer: TcpStream,
    active_from: u64,
    /// Generation of the connection backing this entry; events stamped
    /// with an older generation are ignored.
    gen: u64,
}

/// [`Channel`] adapter between the round driver and the socket threads.
pub struct TcpServerChannel {
    rx: Receiver<Inbound>,
    peers: BTreeMap<u32, Peer>,
    carry: Vec<(Envelope, usize)>,
    stats: NetStats,
    phase_timeout: Duration,
    shared: Arc<SyncShared>,
}

impl TcpServerChannel {
    /// A channel draining `rx`, waiting at most `phase_timeout` per
    /// collect before degrading to whatever arrived.
    pub fn new(rx: Receiver<Inbound>, phase_timeout: Duration, shared: Arc<SyncShared>) -> Self {
        Self {
            rx,
            peers: BTreeMap::new(),
            carry: Vec::new(),
            stats: NetStats::default(),
            phase_timeout,
            shared,
        }
    }

    /// Number of currently connected clients.
    pub fn n_peers(&self) -> usize {
        self.peers.len()
    }

    /// Startup barrier: processes inbound events until `n` clients are
    /// connected or `timeout` passes. Returns the connected count.
    pub fn wait_for_peers(&mut self, n: usize, timeout: Duration) -> usize {
        // LINT: allow(wall-clock) startup barrier over real sockets; the
        // round math never sees this clock.
        let start = Instant::now();
        while self.peers.len() < n {
            let Some(left) = timeout.checked_sub(start.elapsed()) else {
                break;
            };
            match self.rx.recv_timeout(left) {
                Ok(ev) => self.apply(ev, None),
                Err(_) => break,
            }
        }
        self.peers.len()
    }

    /// Applies one event. When `collecting` names the round in flight,
    /// frames are routed into its batch/carry; otherwise frames are
    /// carried for the next collect.
    fn apply(&mut self, ev: Inbound, collecting: Option<&mut CollectState>) {
        match ev {
            Inbound::Joined {
                id,
                gen,
                writer,
                active_from,
            } => {
                // Latest wins: the acceptor only admits with a fresh
                // (strictly larger) generation, so an insert for a mapped
                // id is a reconnect superseding the old connection.
                self.peers.insert(
                    id,
                    Peer {
                        writer,
                        active_from,
                        gen,
                    },
                );
            }
            Inbound::Left { id, gen } => {
                // An abandoned connection's departure notice can be
                // queued behind the replacement's `Joined`; it must not
                // evict the rejoined peer.
                if self.peers.get(&id).map(|p| p.gen) == Some(gen) {
                    self.peers.remove(&id);
                }
            }
            Inbound::Frame { id, gen, env, len } => {
                if self.peers.get(&id).map(|p| p.gen) != Some(gen) {
                    // Raced out of a connection that was since evicted:
                    // the client already moved on, the frame is stale.
                    self.stats.dropped_frames += 1;
                    return;
                }
                match collecting {
                    Some(c) => c.take(id, env, len, &mut self.carry),
                    None => self.carry.push((env, len)),
                }
            }
        }
    }
}

/// The in-flight bookkeeping of one `server_collect` call.
struct CollectState {
    round: u64,
    /// Milliseconds since the phase opened (the arrival stamps).
    elapsed_ms: f64,
    /// `(arrival_ms, (envelope, frame bytes))`, the
    /// [`admit_by_deadline`] input shape.
    batch: Vec<(f64, (Envelope, usize))>,
    /// Clients that delivered a frame for `round` during this call.
    reported: BTreeSet<u32>,
}

impl CollectState {
    fn take(&mut self, id: u32, env: Envelope, len: usize, carry: &mut Vec<(Envelope, usize)>) {
        match env.round.cmp(&self.round) {
            Ordering::Equal => {
                self.reported.insert(id);
                self.batch.push((self.elapsed_ms, (env, len)));
            }
            Ordering::Greater => carry.push((env, len)),
            // A frame of an already-closed round: known late whatever the
            // deadline, so it flows to the admit helper as unreachable.
            Ordering::Less => self.batch.push((f64::INFINITY, (env, len))),
        }
    }
}

impl Channel for TcpServerChannel {
    /// The server never uploads; a no-op so the trait is total.
    fn upload(&mut self, _env: Envelope) -> usize {
        0
    }

    fn server_collect(&mut self, round: u64) -> Vec<Envelope> {
        self.shared.begin_round(round);
        // LINT: allow(wall-clock) the phase deadline over a real network
        // is necessarily wall time; every admit/drop decision it feeds
        // still goes through the shared `admit_by_deadline` helper.
        let phase_start = Instant::now();
        let deadline_ms = self.phase_timeout.as_secs_f64() * 1e3;

        let mut c = CollectState {
            round,
            elapsed_ms: 0.0,
            batch: Vec::new(),
            reported: BTreeSet::new(),
        };
        // Frames carried over from earlier collects count as instant.
        for (env, len) in std::mem::take(&mut self.carry) {
            c.take(env.sender, env, len, &mut self.carry);
        }
        // Drain whatever is already queued — join/leave notices and
        // frames that raced ahead of this collect — before deciding who
        // is still awaited.
        while let Ok(ev) = self.rx.try_recv() {
            self.apply(ev, Some(&mut c));
        }

        loop {
            let waiting_on = self
                .peers
                .iter()
                .any(|(id, p)| p.active_from <= round && !c.reported.contains(id));
            if !waiting_on {
                break;
            }
            let Some(left) = self.phase_timeout.checked_sub(phase_start.elapsed()) else {
                break;
            };
            match self.rx.recv_timeout(left) {
                Ok(ev) => {
                    c.elapsed_ms = phase_start.elapsed().as_secs_f64() * 1e3;
                    self.apply(ev, Some(&mut c));
                }
                Err(RecvTimeoutError::Timeout) => break,
                // All producer threads are gone (shutdown): whatever is
                // batched is all there will ever be.
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        let mut envs: Vec<Envelope> =
            admit_by_deadline(c.batch, deadline_ms, &mut self.stats, |(_, len)| *len)
                .into_iter()
                .map(|(env, _)| env)
                .collect();
        envs.sort_by_key(|e| e.sender);
        envs
    }

    /// Early-returning collect for the fold-on-arrival server loop:
    /// returns as soon as at least one round-`round` frame has been
    /// admitted (often a single fast client's upload), so the caller can
    /// fold it while stragglers are still training. Returns an empty batch
    /// only when nothing more is coming — no live peer is active for the
    /// round and unreported in this call, the phase deadline elapsed, or
    /// every producer thread is gone.
    fn server_collect_some(&mut self, round: u64) -> Vec<Envelope> {
        self.shared.begin_round(round);
        // LINT: allow(wall-clock) same phase-deadline clock as
        // `server_collect`; every admit/drop decision still flows through
        // the shared `admit_by_deadline` helper.
        let phase_start = Instant::now();
        let deadline_ms = self.phase_timeout.as_secs_f64() * 1e3;

        let mut c = CollectState {
            round,
            elapsed_ms: 0.0,
            batch: Vec::new(),
            reported: BTreeSet::new(),
        };
        // Frames carried over from earlier collects count as instant.
        for (env, len) in std::mem::take(&mut self.carry) {
            c.take(env.sender, env, len, &mut self.carry);
        }
        while let Ok(ev) = self.rx.try_recv() {
            self.apply(ev, Some(&mut c));
        }

        // Block only while the batch is still empty: one admitted frame
        // is enough for the caller to make fold progress.
        while c.reported.is_empty() {
            let waiting_on = self
                .peers
                .iter()
                .any(|(id, p)| p.active_from <= round && !c.reported.contains(id));
            if !waiting_on {
                break;
            }
            let Some(left) = self.phase_timeout.checked_sub(phase_start.elapsed()) else {
                break;
            };
            match self.rx.recv_timeout(left) {
                Ok(ev) => {
                    c.elapsed_ms = phase_start.elapsed().as_secs_f64() * 1e3;
                    self.apply(ev, Some(&mut c));
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        let mut envs: Vec<Envelope> =
            admit_by_deadline(c.batch, deadline_ms, &mut self.stats, |(_, len)| *len)
                .into_iter()
                .map(|(env, _)| env)
                .collect();
        envs.sort_by_key(|e| e.sender);
        envs
    }

    fn download(&mut self, to: u32, env: Envelope) -> usize {
        let frame = env.encode();
        let n = frame.len();
        self.stats.sent_frames += 1;
        self.stats.sent_bytes += n as u64;
        if matches!(env.payload, Payload::GlobalModel { .. }) {
            // Snooped for the handshake: a client joining later starts
            // from this aggregation.
            self.shared.set_model(frame.clone());
        }
        match self.peers.get_mut(&to) {
            Some(peer) => match write_prefixed(&mut peer.writer, &frame) {
                Ok(()) => {
                    self.stats.delivered_frames += 1;
                    self.stats.delivered_bytes += n as u64;
                }
                Err(_) => {
                    // A dead connection; the reader thread's `Left` will
                    // follow, but stop writing to it right away.
                    self.stats.dropped_frames += 1;
                    self.peers.remove(&to);
                }
            },
            None => {
                self.stats.dropped_frames += 1;
            }
        }
        n
    }

    /// Broadcast override: one `encode()` (checksum included) for the
    /// whole cohort, then the frame is scattered to every live peer in
    /// socket-buffer-sized slices, round-robin. Encoding once drops the
    /// per-peer work from O(frame encode) to O(frame memcpy); the
    /// round-robin scatter means that while one peer's kernel buffer is
    /// full the server streams into the others' instead of blocking on a
    /// serial `write_all` per peer — at multi-megabyte models that
    /// peer-by-peer drain ping-pong, not the copies, dominated the
    /// downlink tail. Each peer still observes plain `write_prefixed`
    /// bytes, in order.
    fn download_many(&mut self, to: &[u32], env: Envelope) -> usize {
        /// Stay under default socket buffers so a slice to a draining
        /// peer usually fits without blocking.
        const SLICE: usize = 128 * 1024;
        let frame = env.encode();
        let n = frame.len();
        if matches!(env.payload, Payload::GlobalModel { .. }) {
            // Snooped for the handshake: a client joining later starts
            // from this aggregation.
            self.shared.set_model(frame.clone());
        }
        self.stats.sent_frames += to.len() as u64;
        self.stats.sent_bytes += (to.len() * n) as u64;
        let mut live: Vec<u32> = Vec::with_capacity(to.len());
        for &id in to {
            match self.peers.get_mut(&id) {
                // The length prefix first, so every later slice is pure
                // frame payload at the same offset for every peer.
                Some(peer) => match peer.writer.write_all(&(n as u32).to_le_bytes()) {
                    Ok(()) => live.push(id),
                    Err(_) => {
                        // A dead connection; the reader thread's `Left`
                        // will follow, but stop writing to it right away.
                        self.stats.dropped_frames += 1;
                        self.peers.remove(&id);
                    }
                },
                None => {
                    self.stats.dropped_frames += 1;
                }
            }
        }
        for start in (0..n).step_by(SLICE) {
            let slice = &frame[start..(start + SLICE).min(n)];
            live.retain(|&id| {
                let Some(peer) = self.peers.get_mut(&id) else {
                    self.stats.dropped_frames += 1;
                    return false;
                };
                match peer.writer.write_all(slice) {
                    Ok(()) => true,
                    Err(_) => {
                        self.stats.dropped_frames += 1;
                        self.peers.remove(&id);
                        false
                    }
                }
            });
        }
        for &id in &live {
            if let Some(peer) = self.peers.get_mut(&id) {
                if peer.writer.flush().is_ok() {
                    self.stats.delivered_frames += 1;
                    self.stats.delivered_bytes += n as u64;
                } else {
                    self.stats.dropped_frames += 1;
                    self.peers.remove(&id);
                }
            }
        }
        n
    }

    /// The server never collects downlink; empty so the trait is total.
    fn client_collect(&mut self, _id: u32, _round: u64) -> Vec<Envelope> {
        Vec::new()
    }

    fn awaited_peers(&self, round: u64) -> Option<usize> {
        Some(
            self.peers
                .values()
                .filter(|p| p.active_from <= round)
                .count(),
        )
    }

    fn stats(&self) -> NetStats {
        self.stats
    }

    fn restore_state(&mut self, state: &ChannelState) {
        self.stats = state.stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use fedomd_transport::Tensor;
    use std::net::TcpListener;

    fn sock_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    fn env(round: u64, sender: u32) -> Envelope {
        Envelope {
            round,
            sender,
            payload: Payload::Metrics {
                train_loss: 1.0,
                val_correct: 0,
                val_total: 1,
                test_correct: 0,
                test_total: 1,
            },
        }
    }

    fn frame_ev(round: u64, sender: u32) -> Inbound {
        frame_ev_gen(round, sender, 1)
    }

    fn frame_ev_gen(round: u64, sender: u32, gen: u64) -> Inbound {
        let e = env(round, sender);
        let len = e.encoded_len();
        Inbound::Frame {
            id: sender,
            gen,
            env: e,
            len,
        }
    }

    #[test]
    fn collect_waits_for_every_live_peer_and_sorts() {
        let (tx, rx) = unbounded();
        let shared = Arc::new(SyncShared::new(0));
        let mut chan = TcpServerChannel::new(rx, Duration::from_secs(5), shared);
        let (w0, _k0) = sock_pair();
        let (w1, _k1) = sock_pair();
        tx.send(Inbound::Joined {
            id: 0,
            gen: 1,
            writer: w0,
            active_from: 0,
        })
        .unwrap();
        tx.send(Inbound::Joined {
            id: 1,
            gen: 1,
            writer: w1,
            active_from: 0,
        })
        .unwrap();
        // Out of sender order on the wire; sorted on collect.
        tx.send(frame_ev(0, 1)).unwrap();
        tx.send(frame_ev(0, 0)).unwrap();
        let got = chan.server_collect(0);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].sender, 0);
        assert_eq!(got[1].sender, 1);
        assert_eq!(chan.stats().delivered_frames, 2);
        assert_eq!(chan.stats().dropped_frames, 0);
    }

    #[test]
    fn collect_some_returns_the_first_frame_without_waiting_for_stragglers() {
        let (tx, rx) = unbounded();
        let shared = Arc::new(SyncShared::new(0));
        // Would block the full 5 s per call if `server_collect_some` waited
        // for every live peer the way `server_collect` does.
        let mut chan = TcpServerChannel::new(rx, Duration::from_secs(5), shared);
        let (w0, _k0) = sock_pair();
        let (w1, _k1) = sock_pair();
        tx.send(Inbound::Joined {
            id: 0,
            gen: 1,
            writer: w0,
            active_from: 0,
        })
        .unwrap();
        tx.send(Inbound::Joined {
            id: 1,
            gen: 1,
            writer: w1,
            active_from: 0,
        })
        .unwrap();
        tx.send(frame_ev(0, 1)).unwrap();
        let got = chan.server_collect_some(0);
        assert_eq!(got.len(), 1, "one admitted frame is enough to return");
        assert_eq!(got[0].sender, 1);
        // The straggler's frame satisfies the next call.
        tx.send(frame_ev(0, 0)).unwrap();
        let got = chan.server_collect_some(0);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].sender, 0);
        assert_eq!(chan.stats().delivered_frames, 2);
    }

    #[test]
    fn collect_some_returns_empty_once_no_awaited_peer_remains() {
        let (tx, rx) = unbounded();
        let shared = Arc::new(SyncShared::new(0));
        let mut chan = TcpServerChannel::new(rx, Duration::from_secs(5), shared);
        let (w0, _k0) = sock_pair();
        tx.send(Inbound::Joined {
            id: 0,
            gen: 1,
            writer: w0,
            active_from: 0,
        })
        .unwrap();
        tx.send(Inbound::Left { id: 0, gen: 1 }).unwrap();
        // Empty batch = the transport's "nothing more is coming" signal the
        // fold loop closes the phase on; it must not burn the phase timeout.
        let got = chan.server_collect_some(0);
        assert!(got.is_empty());
    }

    #[test]
    fn future_frames_carry_and_stale_frames_drop() {
        let (tx, rx) = unbounded();
        let shared = Arc::new(SyncShared::new(0));
        let mut chan = TcpServerChannel::new(rx, Duration::from_millis(50), shared);
        let (w0, _k0) = sock_pair();
        tx.send(Inbound::Joined {
            id: 0,
            gen: 1,
            writer: w0,
            active_from: 0,
        })
        .unwrap();
        tx.send(frame_ev(1, 0)).unwrap(); // a fast client's next round
        tx.send(frame_ev(0, 0)).unwrap();
        let got = chan.server_collect(0);
        assert_eq!(got.len(), 1, "only the round-0 frame");
        assert_eq!(got[0].round, 0);
        // The carried round-1 frame satisfies the next collect instantly.
        let got = chan.server_collect(1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].round, 1);
        // A round-0 straggler arriving during round 2 is counted dropped.
        tx.send(frame_ev(0, 0)).unwrap();
        tx.send(frame_ev(2, 0)).unwrap();
        let got = chan.server_collect(2);
        assert_eq!(got.len(), 1);
        assert_eq!(chan.stats().dropped_frames, 1);
    }

    #[test]
    fn departed_and_future_peers_are_not_waited_for() {
        let (tx, rx) = unbounded();
        let shared = Arc::new(SyncShared::new(0));
        let mut chan = TcpServerChannel::new(rx, Duration::from_secs(5), shared);
        let (w0, _k0) = sock_pair();
        let (w1, _k1) = sock_pair();
        let (w2, _k2) = sock_pair();
        tx.send(Inbound::Joined {
            id: 0,
            gen: 1,
            writer: w0,
            active_from: 0,
        })
        .unwrap();
        tx.send(Inbound::Joined {
            id: 1,
            gen: 1,
            writer: w1,
            active_from: 0,
        })
        .unwrap();
        // Client 2 joined mid-run and only participates from round 3.
        tx.send(Inbound::Joined {
            id: 2,
            gen: 1,
            writer: w2,
            active_from: 3,
        })
        .unwrap();
        tx.send(frame_ev(0, 0)).unwrap();
        tx.send(Inbound::Left { id: 1, gen: 1 }).unwrap();
        // Would block the full 5 s if the departed or the future peer were
        // still counted as awaited.
        let got = chan.server_collect(0);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].sender, 0);
        assert_eq!(chan.n_peers(), 2);
    }

    #[test]
    fn download_snoops_the_model_and_counts_unknown_peers_dropped() {
        let (_tx, rx) = unbounded();
        let shared = Arc::new(SyncShared::new(0));
        let mut chan = TcpServerChannel::new(rx, Duration::from_millis(10), Arc::clone(&shared));
        let model = Envelope {
            round: 0,
            sender: u32::MAX,
            payload: Payload::GlobalModel {
                params: vec![Tensor {
                    rows: 1,
                    cols: 1,
                    data: vec![0.5],
                }],
            },
        };
        assert!(shared.model_frame().is_none());
        let n = chan.download(9, model.clone());
        assert_eq!(n, model.encoded_len());
        assert_eq!(chan.stats().sent_frames, 1);
        assert_eq!(chan.stats().dropped_frames, 1, "no such peer");
        // ... but the model frame is still remembered for joiners.
        assert_eq!(shared.model_frame(), Some(model.encode()));
    }

    #[test]
    fn download_many_encodes_once_and_delivers_to_every_live_peer() {
        let (tx, rx) = unbounded();
        let shared = Arc::new(SyncShared::new(0));
        let mut chan = TcpServerChannel::new(rx, Duration::from_millis(50), Arc::clone(&shared));
        let (w0, mut far0) = sock_pair();
        let (w1, mut far1) = sock_pair();
        for (id, writer) in [(0, w0), (1, w1)] {
            tx.send(Inbound::Joined {
                id,
                gen: 1,
                writer,
                active_from: 0,
            })
            .unwrap();
        }
        chan.server_collect(0); // drain the joins
        let model = Envelope {
            round: 0,
            sender: u32::MAX,
            payload: Payload::GlobalModel {
                params: vec![Tensor {
                    rows: 1,
                    cols: 2,
                    data: vec![0.25, -0.5],
                }],
            },
        };
        // Peer 7 never joined: counted dropped, the rest still delivered.
        let n = chan.download_many(&[0, 1, 7], model.clone());
        assert_eq!(n, model.encoded_len());
        assert_eq!(chan.stats().sent_frames, 3);
        assert_eq!(chan.stats().delivered_frames, 2);
        assert_eq!(chan.stats().dropped_frames, 1);
        // Both live peers got the identical encoded frame...
        for far in [&mut far0, &mut far1] {
            let body = crate::stream::read_prefixed(far, fedomd_transport::DEFAULT_MAX_FRAME_BYTES)
                .expect("frame");
            assert_eq!(body, model.encode());
        }
        // ...and the broadcast snooped the model for future joiners.
        assert_eq!(shared.model_frame(), Some(model.encode()));
    }

    #[test]
    fn a_stale_left_does_not_evict_a_rejoined_peer() {
        let (tx, rx) = unbounded();
        let shared = Arc::new(SyncShared::new(0));
        let mut chan = TcpServerChannel::new(rx, Duration::from_millis(50), shared);
        let (w1, _k1) = sock_pair();
        let (w2, _k2) = sock_pair();
        tx.send(Inbound::Joined {
            id: 0,
            gen: 1,
            writer: w1,
            active_from: 0,
        })
        .unwrap();
        // Fast reconnect: the replacement joins before the abandoned
        // connection's reader gets around to reporting its departure.
        tx.send(Inbound::Joined {
            id: 0,
            gen: 2,
            writer: w2,
            active_from: 0,
        })
        .unwrap();
        tx.send(Inbound::Left { id: 0, gen: 1 }).unwrap();
        // A frame raced out of the dead connection: stale, dropped.
        tx.send(frame_ev_gen(0, 0, 1)).unwrap();
        // The live connection's frame is the one that counts.
        tx.send(frame_ev_gen(0, 0, 2)).unwrap();
        let got = chan.server_collect(0);
        assert_eq!(chan.n_peers(), 1, "the rejoined peer must survive");
        assert_eq!(got.len(), 1);
        assert_eq!(chan.stats().delivered_frames, 1);
        assert_eq!(chan.stats().dropped_frames, 1, "the stale-gen frame");
        // The *matching* Left still evicts.
        tx.send(Inbound::Left { id: 0, gen: 2 }).unwrap();
        let _ = chan.server_collect(1);
        assert_eq!(chan.n_peers(), 0);
    }

    #[test]
    fn awaited_peers_tracks_liveness_and_activation() {
        let (tx, rx) = unbounded();
        let shared = Arc::new(SyncShared::new(0));
        let mut chan = TcpServerChannel::new(rx, Duration::from_millis(50), shared);
        assert_eq!(chan.awaited_peers(0), Some(0));
        let (w0, _k0) = sock_pair();
        let (w1, _k1) = sock_pair();
        tx.send(Inbound::Joined {
            id: 0,
            gen: 1,
            writer: w0,
            active_from: 0,
        })
        .unwrap();
        // A mid-run joiner only counts from its activation round.
        tx.send(Inbound::Joined {
            id: 1,
            gen: 2,
            writer: w1,
            active_from: 3,
        })
        .unwrap();
        chan.wait_for_peers(2, Duration::from_secs(1));
        assert_eq!(chan.awaited_peers(0), Some(1));
        assert_eq!(chan.awaited_peers(3), Some(2));
        tx.send(Inbound::Left { id: 0, gen: 1 }).unwrap();
        let _ = chan.server_collect(0);
        assert_eq!(chan.awaited_peers(0), Some(0), "departures shrink it");
    }

    #[test]
    fn join_round_tracks_the_run() {
        let shared = SyncShared::new(7);
        assert_eq!(shared.join_round(), 7, "before the loop: the start round");
        shared.begin_round(7);
        assert_eq!(
            shared.join_round(),
            8,
            "mid-run: the round in flight is missed"
        );
    }
}
