//! The net-layer error type.

use std::fmt;

use fedomd_federated::CohortConfigError;
use fedomd_transport::WireError;

/// Anything that can go wrong between two FedOMD processes.
#[derive(Debug)]
pub enum NetError {
    /// The run configuration itself is invalid (e.g. a NaN cohort
    /// `sample_frac`); rejected before any socket is touched, on both the
    /// server and the client side, so a bad config can never reach the
    /// handshake digest looking legitimate.
    Config(CohortConfigError),
    /// Socket-level failure (connect, read, write, bind).
    Io(std::io::Error),
    /// A frame failed the codec (bad magic, checksum, oversized prefix).
    Wire(WireError),
    /// The server refused this client's handshake; the string is the
    /// server's stated reason (version skew, bad id, config digest
    /// mismatch, duplicate join).
    Rejected(String),
    /// The peer violated the join protocol (e.g. garbage where a
    /// handshake message belongs).
    Protocol(String),
    /// A `--resume` checkpoint could not be loaded or does not match the
    /// run configuration.
    Checkpoint(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Config(e) => write!(f, "invalid run config: {e}"),
            NetError::Io(e) => write!(f, "i/o: {e}"),
            NetError::Wire(e) => write!(f, "wire: {e}"),
            NetError::Rejected(why) => write!(f, "handshake rejected: {why}"),
            NetError::Protocol(why) => write!(f, "protocol violation: {why}"),
            NetError::Checkpoint(why) => write!(f, "checkpoint: {why}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<CohortConfigError> for NetError {
    fn from(e: CohortConfigError) -> Self {
        NetError::Config(e)
    }
}
