//! Length-prefixed frame I/O over a byte stream, plus the join handshake.
//!
//! Every message between FedOMD processes is a little-endian `u32` length
//! prefix followed by that many bytes. For envelope traffic the bytes are
//! a complete `fedomd-transport` frame (magic, header, payload, CRC) and
//! the declared length runs through
//! [`fedomd_transport::check_frame_len`] **before any allocation**, so an
//! adversarial or corrupted prefix cannot make the receiver reserve
//! gigabytes. Handshake messages use the same prefix with their own tiny
//! codec below.
//!
//! The handshake is one round trip at connect time:
//!
//! * client → server [`Hello`]: protocol version, client id, and the
//!   FNV-1a digest of the run configuration
//!   ([`fedomd_core::run_config_digest`]);
//! * server → client [`Welcome`]: accept/reject with a reason, the round
//!   the client should enter, and optionally the latest aggregated global
//!   model (an encoded `GlobalModel` frame) so a rejoining or resumed
//!   client starts from the federation's current weights.

use std::io::{Read, Write};

use fedomd_transport::wire::{ByteReader, ByteWriter};
use fedomd_transport::{check_frame_len, Envelope};

use crate::error::NetError;

/// Version of the process-to-process join protocol (independent of the
/// frame codec's own version byte).
pub const PROTOCOL_VERSION: u8 = 1;

/// Magic prefix of a `Hello` handshake message.
const HELLO_MAGIC: u32 = 0x464A_4F49; // "FJOI"
/// Magic prefix of a `Welcome` handshake message.
const WELCOME_MAGIC: u32 = 0x4657_454C; // "FWEL"

/// Handshake messages stay far below this; anything bigger is garbage.
/// The optional model sync rides as a separate envelope frame under the
/// transport cap, not inside the `Welcome`.
const MAX_HANDSHAKE_BYTES: u32 = 4096;

/// Writes one length-prefixed message and flushes.
pub fn write_prefixed(w: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one length-prefixed message, allocating only after the declared
/// length passes the `max` cap.
pub fn read_prefixed(r: &mut impl Read, max: u32) -> Result<Vec<u8>, NetError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let declared = u32::from_le_bytes(len);
    if declared > max {
        return Err(NetError::Protocol(format!(
            "declared message length {declared} exceeds the cap {max}"
        )));
    }
    let mut body = vec![0u8; declared as usize];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Writes one envelope as a length-prefixed transport frame.
pub fn write_frame(w: &mut impl Write, env: &Envelope) -> std::io::Result<usize> {
    let frame = env.encode();
    write_prefixed(w, &frame)?;
    Ok(frame.len())
}

/// Reads one length-prefixed transport frame; the declared length is
/// validated by [`check_frame_len`] (cap *and* minimum) before the
/// allocation, the frame content by [`Envelope::decode`] after it.
pub fn read_frame(r: &mut impl Read, max: u32) -> Result<(Envelope, usize), NetError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let declared = u32::from_le_bytes(len);
    let n = check_frame_len(declared, max)?;
    let mut frame = vec![0u8; n];
    r.read_exact(&mut frame)?;
    let env = Envelope::decode(&frame)?;
    Ok((env, n))
}

/// The client's half of the join handshake.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Join-protocol version ([`PROTOCOL_VERSION`]).
    pub version: u8,
    /// The client's party id (`0..n_parties`).
    pub client_id: u32,
    /// [`fedomd_core::run_config_digest`] of the client's configuration;
    /// the server refuses a digest that differs from its own.
    pub digest: u64,
}

impl Hello {
    /// Serialises and sends as one prefixed message.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        let mut b = ByteWriter::new();
        b.put_u32(HELLO_MAGIC);
        b.put_u8(self.version);
        b.put_u32(self.client_id);
        b.put_u64(self.digest);
        write_prefixed(w, &b.into_bytes())
    }

    /// Reads and parses one prefixed `Hello`.
    pub fn read_from(r: &mut impl Read) -> Result<Self, NetError> {
        let body = read_prefixed(r, MAX_HANDSHAKE_BYTES)?;
        let mut b = ByteReader::new(&body);
        if b.get_u32()? != HELLO_MAGIC {
            return Err(NetError::Protocol("hello: bad magic".into()));
        }
        let hello = Hello {
            version: b.get_u8()?,
            client_id: b.get_u32()?,
            digest: b.get_u64()?,
        };
        b.expect_end()?;
        Ok(hello)
    }
}

/// The server's verdict on a [`Hello`].
#[derive(Clone, Debug, PartialEq)]
pub struct Welcome {
    /// Whether the client is admitted.
    pub accept: bool,
    /// Reject reason (empty on accept).
    pub reason: String,
    /// The first round the client should run. 0 for a fresh federation;
    /// the checkpoint's next round after `--resume`; the round after the
    /// current one for a mid-run rejoin.
    pub resume_round: u64,
    /// Whether a `GlobalModel` frame follows this message, carrying the
    /// weights the client must install before its first round.
    pub has_model: bool,
}

impl Welcome {
    /// A rejection with a reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        Welcome {
            accept: false,
            reason: reason.into(),
            resume_round: 0,
            has_model: false,
        }
    }

    /// Serialises and sends as one prefixed message.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        let mut b = ByteWriter::new();
        b.put_u32(WELCOME_MAGIC);
        b.put_u8(self.accept as u8);
        b.put_str(&self.reason);
        b.put_u64(self.resume_round);
        b.put_u8(self.has_model as u8);
        write_prefixed(w, &b.into_bytes())
    }

    /// Reads and parses one prefixed `Welcome`.
    pub fn read_from(r: &mut impl Read) -> Result<Self, NetError> {
        let body = read_prefixed(r, MAX_HANDSHAKE_BYTES)?;
        let mut b = ByteReader::new(&body);
        if b.get_u32()? != WELCOME_MAGIC {
            return Err(NetError::Protocol("welcome: bad magic".into()));
        }
        let w = Welcome {
            accept: b.get_u8()? != 0,
            reason: b.get_str()?,
            resume_round: b.get_u64()?,
            has_model: b.get_u8()? != 0,
        };
        b.expect_end()?;
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedomd_transport::{Payload, WireError, DEFAULT_MAX_FRAME_BYTES};

    #[test]
    fn handshake_messages_round_trip() {
        let mut buf = Vec::new();
        let hello = Hello {
            version: PROTOCOL_VERSION,
            client_id: 7,
            digest: 0xDEAD_BEEF_CAFE_F00D,
        };
        hello.write_to(&mut buf).expect("write");
        let got = Hello::read_from(&mut buf.as_slice()).expect("read");
        assert_eq!(got, hello);

        let mut buf = Vec::new();
        let welcome = Welcome {
            accept: true,
            reason: String::new(),
            resume_round: 42,
            has_model: true,
        };
        welcome.write_to(&mut buf).expect("write");
        assert_eq!(
            Welcome::read_from(&mut buf.as_slice()).expect("read"),
            welcome
        );

        let mut buf = Vec::new();
        let nope = Welcome::reject("digest mismatch");
        nope.write_to(&mut buf).expect("write");
        let got = Welcome::read_from(&mut buf.as_slice()).expect("read");
        assert!(!got.accept);
        assert_eq!(got.reason, "digest mismatch");
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let env = Envelope {
            round: 9,
            sender: 3,
            payload: Payload::Metrics {
                train_loss: 0.75,
                val_correct: 1,
                val_total: 2,
                test_correct: 3,
                test_total: 4,
            },
        };
        let mut buf = Vec::new();
        let n = write_frame(&mut buf, &env).expect("write");
        assert_eq!(buf.len(), n + 4, "prefix + frame");
        let (got, len) = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME_BYTES).expect("read");
        assert_eq!(len, n);
        assert_eq!(got.round, 9);
        assert_eq!(got.sender, 3);
        assert_eq!(got.payload, env.payload);
    }

    #[test]
    fn adversarial_prefix_is_rejected_before_allocation() {
        // A hostile peer declares a 4 GiB frame: the reader must refuse
        // from the 4 prefix bytes alone.
        let mut bytes = u32::MAX.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        match read_frame(&mut bytes.as_slice(), DEFAULT_MAX_FRAME_BYTES) {
            Err(NetError::Wire(WireError::FrameTooLarge { declared, max })) => {
                assert_eq!(declared, u32::MAX as u64);
                assert_eq!(max, DEFAULT_MAX_FRAME_BYTES as u64);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        // Same for handshake messages with their much tighter cap.
        let err = read_prefixed(&mut bytes.as_slice(), 4096);
        assert!(matches!(err, Err(NetError::Protocol(_))));
    }
}
