//! `fedomd-net`: the real multi-process deployment of FedOMD.
//!
//! Everything below the algorithm is `std::net` TCP plus the existing
//! `fedomd-transport` frame codec — no async runtime, one OS thread per
//! connection:
//!
//! * [`stream`] — length-prefixed frame I/O over a byte stream (the
//!   prefix is capped by [`fedomd_transport::check_frame_len`] before any
//!   allocation) and the join handshake (protocol version, client id,
//!   run-config digest).
//! * [`server_chan`] / [`client_chan`] — the two halves of the
//!   [`fedomd_transport::Channel`] trait over TCP. Both route every
//!   admit/drop decision through the shared
//!   [`fedomd_transport::admit_by_deadline`] helper, so disconnects and
//!   stragglers degrade a round to partial aggregation exactly as the
//!   in-process fault simulator does.
//! * [`deploy`] — the process entry points: [`serve`] hosts the round
//!   driver (with periodic checkpoints and `--resume`), [`run_client`]
//!   trains one shard and reconnects with backoff when the server is
//!   lost.
//!
//! The `fedomd-server` / `fedomd-client` binaries are thin CLI shells
//! over [`deploy`]; `tests/net_golden.rs` (workspace root) pins that a
//! 3-client loopback run reproduces the in-process accuracy and history.

#![forbid(unsafe_code)]

pub mod client_chan;
pub mod deploy;
pub mod error;
pub mod server_chan;
pub mod stream;

pub use client_chan::TcpClientChannel;
pub use deploy::{run_client, serve, serve_on, ClientOpts, ClientReport, NetConfig, ServeOpts};
pub use error::NetError;
pub use server_chan::TcpServerChannel;
pub use stream::{read_frame, write_frame, Hello, Welcome, PROTOCOL_VERSION};
