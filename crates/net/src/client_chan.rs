//! The client's half of the [`Channel`] trait over TCP.
//!
//! One background thread owns the read half of the connection and decodes
//! frames into a crossbeam queue; the training thread consumes the queue
//! through [`TcpClientChannel::client_collect`] and writes uploads
//! directly. When the connection dies the reader thread exits, the queue
//! disconnects, and every subsequent collect returns empty immediately —
//! which the round loop reads as "the server is gone" and turns into
//! [`fedomd_core::ClientOutcome::ServerLost`], the reconnect trigger.

use std::cmp::Ordering;
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};
use fedomd_transport::{admit_by_deadline, Channel, ChannelState, Envelope, NetStats};

use crate::stream::{read_frame, write_prefixed};

/// [`Channel`] adapter between one client's round loop and its server
/// connection.
pub struct TcpClientChannel {
    writer: TcpStream,
    rx: Receiver<(Envelope, usize)>,
    carry: Vec<(Envelope, usize)>,
    stats: NetStats,
    phase_timeout: Duration,
    dead: bool,
}

impl TcpClientChannel {
    /// Wraps an already-handshaken connection: spawns the reader thread
    /// (frames above `max_frame_bytes` kill the connection) and waits at
    /// most `phase_timeout` per collect.
    pub fn new(
        stream: TcpStream,
        max_frame_bytes: u32,
        phase_timeout: Duration,
    ) -> std::io::Result<Self> {
        let mut read_half = stream.try_clone()?;
        // Bounded: if the training loop stalls, the reader parks on a full
        // queue (TCP backpressure) instead of buffering frames without
        // limit; 256 covers many phases of server traffic.
        let (tx, rx) = crossbeam::channel::bounded(256);
        // LINT: allow(detached-thread) reader with no handle to keep: it
        // exits on EOF or error once `Drop` shuts the socket down, and
        // joining it from `Drop` could block a dying client on the peer.
        std::thread::spawn(move || {
            // Exits (dropping `tx`, disconnecting the queue) on EOF, any
            // I/O error, or a frame that fails the codec.
            while let Ok(item) = read_frame(&mut read_half, max_frame_bytes) {
                if tx.send(item).is_err() {
                    break;
                }
            }
        });
        Ok(Self {
            writer: stream,
            rx,
            carry: Vec::new(),
            stats: NetStats::default(),
            phase_timeout,
            dead: false,
        })
    }

    /// Whether the connection is known dead (a collect observed the
    /// reader thread gone).
    pub fn is_dead(&self) -> bool {
        self.dead
    }
}

impl Drop for TcpClientChannel {
    fn drop(&mut self) {
        // Unblocks the reader thread so it exits with the channel.
        let _ = self.writer.shutdown(Shutdown::Both);
    }
}

impl Channel for TcpClientChannel {
    fn upload(&mut self, env: Envelope) -> usize {
        let frame = env.encode();
        let n = frame.len();
        self.stats.sent_frames += 1;
        self.stats.sent_bytes += n as u64;
        match write_prefixed(&mut self.writer, &frame) {
            Ok(()) => {
                // Handed to the OS; a server-side deadline miss is counted
                // dropped by the server's accounting, not ours.
                self.stats.delivered_frames += 1;
                self.stats.delivered_bytes += n as u64;
            }
            Err(_) => {
                self.stats.dropped_frames += 1;
                self.dead = true;
            }
        }
        n
    }

    /// The client never serves; empty so the trait is total.
    fn server_collect(&mut self, _round: u64) -> Vec<Envelope> {
        Vec::new()
    }

    /// The client never downloads; a no-op so the trait is total.
    fn download(&mut self, _to: u32, _env: Envelope) -> usize {
        0
    }

    fn client_collect(&mut self, _id: u32, round: u64) -> Vec<Envelope> {
        // LINT: allow(wall-clock) the phase deadline over a real network
        // is necessarily wall time; every admit/drop decision it feeds
        // still goes through the shared `admit_by_deadline` helper.
        let phase_start = Instant::now();
        let deadline_ms = self.phase_timeout.as_secs_f64() * 1e3;

        let mut batch: Vec<(f64, (Envelope, usize))> = Vec::new();
        let mut have_current = false;
        let mut route = |arrival: f64,
                         env: Envelope,
                         len: usize,
                         carry: &mut Vec<(Envelope, usize)>,
                         have_current: &mut bool| {
            match env.round.cmp(&round) {
                Ordering::Equal => {
                    *have_current = true;
                    batch.push((arrival, (env, len)));
                }
                Ordering::Greater => carry.push((env, len)),
                Ordering::Less => batch.push((f64::INFINITY, (env, len))),
            }
        };
        for (env, len) in std::mem::take(&mut self.carry) {
            route(0.0, env, len, &mut self.carry, &mut have_current);
        }

        // Block until the first frame of this round (the round loop asks
        // for exactly one downlink kind per collect), then drain whatever
        // else is already queued without blocking again.
        loop {
            if have_current {
                match self.rx.try_recv() {
                    Ok((env, len)) => {
                        let ms = phase_start.elapsed().as_secs_f64() * 1e3;
                        route(ms, env, len, &mut self.carry, &mut have_current);
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        self.dead = true;
                        break;
                    }
                }
            } else {
                if self.dead {
                    break;
                }
                let Some(left) = self.phase_timeout.checked_sub(phase_start.elapsed()) else {
                    break;
                };
                match self.rx.recv_timeout(left) {
                    Ok((env, len)) => {
                        let ms = phase_start.elapsed().as_secs_f64() * 1e3;
                        route(ms, env, len, &mut self.carry, &mut have_current);
                    }
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        self.dead = true;
                        break;
                    }
                }
            }
        }

        let mut envs: Vec<Envelope> =
            admit_by_deadline(batch, deadline_ms, &mut self.stats, |(_, len)| *len)
                .into_iter()
                .map(|(env, _)| env)
                .collect();
        envs.sort_by_key(|e| e.sender);
        envs
    }

    fn stats(&self) -> NetStats {
        self.stats
    }

    fn restore_state(&mut self, state: &ChannelState) {
        self.stats = state.stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedomd_transport::{Payload, DEFAULT_MAX_FRAME_BYTES, SERVER_SENDER};
    use std::net::TcpListener;

    fn env(round: u64) -> Envelope {
        Envelope {
            round,
            sender: SERVER_SENDER,
            payload: Payload::Control(fedomd_transport::Control::Ack),
        }
    }

    /// A connected (client stream, server stream) pair on loopback.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let c = TcpStream::connect(addr).expect("connect");
        let (s, _) = listener.accept().expect("accept");
        (c, s)
    }

    #[test]
    fn uploads_reach_the_far_end_and_downlinks_collect() {
        let (c, mut s) = pair();
        let mut chan = TcpClientChannel::new(c, DEFAULT_MAX_FRAME_BYTES, Duration::from_secs(5))
            .expect("chan");
        let up = Envelope {
            round: 3,
            sender: 1,
            payload: Payload::Control(fedomd_transport::Control::BeginRound),
        };
        let n = chan.upload(up.clone());
        let (got, len) = read_frame(&mut s, DEFAULT_MAX_FRAME_BYTES).expect("server read");
        assert_eq!(len, n);
        assert_eq!(got, up);
        assert_eq!(chan.stats().sent_frames, 1);
        assert_eq!(chan.stats().delivered_frames, 1);

        // Server pushes this round's frame and a future one: the collect
        // returns the first and carries the second.
        write_prefixed(&mut s, &env(3).encode()).expect("write");
        write_prefixed(&mut s, &env(4).encode()).expect("write");
        let got = chan.client_collect(1, 3);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].round, 3);
        let got = chan.client_collect(1, 4);
        assert_eq!(got.len(), 1, "carried frame, no new traffic needed");
        assert_eq!(got[0].round, 4);
    }

    #[test]
    fn a_closed_server_turns_collects_empty_not_hung() {
        let (c, s) = pair();
        let mut chan = TcpClientChannel::new(c, DEFAULT_MAX_FRAME_BYTES, Duration::from_secs(60))
            .expect("chan");
        drop(s); // the server process dies
                 // Despite the 60 s phase deadline this returns promptly: the
                 // reader thread saw EOF and disconnected the queue.
        let got = chan.client_collect(1, 0);
        assert!(got.is_empty());
        assert!(chan.is_dead());
    }

    #[test]
    fn stale_downlinks_are_counted_dropped() {
        let (c, mut s) = pair();
        let mut chan = TcpClientChannel::new(c, DEFAULT_MAX_FRAME_BYTES, Duration::from_secs(5))
            .expect("chan");
        write_prefixed(&mut s, &env(0).encode()).expect("write");
        write_prefixed(&mut s, &env(2).encode()).expect("write");
        let got = chan.client_collect(1, 2);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].round, 2);
        assert_eq!(chan.stats().dropped_frames, 1, "the round-0 leftover");
        assert_eq!(chan.stats().delivered_frames, 1);
    }
}
